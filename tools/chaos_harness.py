"""Seeded chaos suite for the resilience subsystem.

What CI runs after the unit suite: a battery of fault-injection
scenarios, each fully deterministic under ``--seed``, asserting that
the system's end state is *correct* despite the faults — not merely
that it survived:

1. **Killed worker (retried)** — a distributed worker crashes on its
   first attempt; the coordinator retries it and the final
   representation is lossless and identical to the fault-free run.
2. **Dead worker (fallback)** — a worker crashes on every attempt;
   the coordinator reassigns it to the singleton-partition fallback
   and the result is still a lossless representation accepted by
   :func:`repro.core.verify.verify_lossless`.
3. **Dropped connection** — the service client's transport drops
   mid-request; with a retry policy the client reconnects and the
   answer matches Algorithm 6 exactly.
4. **Crash + corrupted checkpoint + resume** — a Mags-DM run is
   killed mid-iteration, its newest checkpoint is then corrupted on
   disk; ``resume`` skips the corrupt snapshot, restarts from the
   previous one, and the finished run's relative size matches the
   uninterrupted baseline.
5. **Degraded serving** — with a zero deadline and degraded mode on,
   ``khop``/``pagerank`` return flagged approximate answers instead
   of timeout errors.
6. **SLO gate** — a healthy server's live telemetry passes the
   default availability/latency SLOs, while an impossible latency
   objective is reported as violated with an error-budget burn > 1.
7. **SIGKILL mid-ingest** — a durable (``--wal-dir``) server is
   killed with ``kill -9`` during sustained acknowledged edge
   mutations; the restarted process replays the WAL and must serve
   exactly the acknowledged prefix (zero acknowledged-but-lost
   mutations, at most one in-flight batch extra), dedup a
   cross-restart retry, and its state must be bit-identical to an
   uninterrupted replay and pass :func:`repro.core.verify.deep_audit`.
8. **SIGKILL mid-maintenance** — a durable server with background
   compactness maintenance enabled is killed twice: mid-ingest, then
   again the moment a recovered maintenance pass commits.  A final
   recovery must replay every ``resummarize`` WAL record
   bit-identically (straight, repeated, and across a mid-tail
   checkpoint cut), converge to zero dirty super-nodes, and pass
   ``deep_audit(optimal=True)`` — the optimality waiver removed.
9. **SIGKILL the primary of a replicated shard** — a replicas=2
   ``acks=quorum`` shard loses its primary to ``kill -9`` mid-stream;
   the router auto-promotes the surviving follower at a higher term,
   client retries dedup across the promotion, the revived stale
   primary is demoted and snapshot-caught-up, zero acknowledged
   mutations are lost, and both replicas recover bit-identically.
10. **SIGKILL + rejoin a follower** — under ``acks=leader`` the
   primary never stops acknowledging while its follower is dead; the
   rejoined follower drains the gap incrementally and ends with a
   byte-identical WAL and bit-identical recovered state.

Every scenario also checks its events are observable through the
:mod:`repro.obs` metrics registry.

Run:  PYTHONPATH=src python tools/chaos_harness.py --seed 0
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.algorithms.mags_dm import MagsDMSummarizer  # noqa: E402
from repro.core.verify import verify_lossless  # noqa: E402
from repro.distributed.coordinator import DistributedSummarizer  # noqa: E402
from repro.graph import generators  # noqa: E402
from repro.obs.metrics import get_registry  # noqa: E402
from repro.queries.neighbors import neighbor_query  # noqa: E402
from repro.resilience import (  # noqa: E402
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    use_injector,
)
from repro.service import (  # noqa: E402
    QueryEngine,
    SummaryQueryServer,
    SummaryServiceClient,
)

PASS = "PASS"


def _graph(seed: int):
    return generators.planted_partition(240, 12, 0.6, 0.03, seed=seed)


def _quiet_policy() -> RetryPolicy:
    return RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


# ----------------------------------------------------------------------
def scenario_worker_crash_retried(seed: int) -> str:
    graph = _graph(seed)

    def summarizer():
        return DistributedSummarizer(
            workers=4, seed=seed, retry_policy=_quiet_policy()
        )

    baseline = summarizer().summarize(graph)
    plan = FaultPlan().crash("worker:1", times=1)
    with use_injector(FaultInjector(plan, seed=seed)) as injector:
        chaotic = summarizer().summarize(graph)
    assert injector.fired_count("worker:1") == 1, "fault did not fire"
    assert chaotic.worker_retries >= 1, "worker was not retried"
    assert chaotic.worker_failures == 0, "retry should have recovered"
    verify_lossless(graph, chaotic.representation)
    assert chaotic.relative_size == baseline.relative_size, (
        f"retried run diverged: {chaotic.relative_size} "
        f"vs {baseline.relative_size}"
    )
    return (
        f"worker crash retried, relative_size="
        f"{chaotic.relative_size:.4f} unchanged"
    )


def scenario_worker_dead_fallback(seed: int) -> str:
    graph = _graph(seed)
    plan = FaultPlan().crash("worker:2", times=10)  # > max_attempts
    with use_injector(FaultInjector(plan, seed=seed)):
        result = DistributedSummarizer(
            workers=4, seed=seed, retry_policy=_quiet_policy()
        ).summarize(graph)
    assert result.worker_failures == 1, "worker should be lost"
    assert result.fallback_workers == [2], result.fallback_workers
    verify_lossless(graph, result.representation)
    assert len(result.upload_bytes) == 4, "fallback upload not accounted"
    return (
        f"dead worker fell back to singletons, still lossless "
        f"(relative_size={result.relative_size:.4f})"
    )


def scenario_connection_drop(seed: int) -> str:
    graph = _graph(seed)
    rep = (
        MagsDMSummarizer(iterations=6, seed=seed)
        .summarize(graph)
        .representation
    )
    engine = QueryEngine(rep, cache_size=128)
    retries_before = _counter_value(
        "repro_resilience_retries_total", component="service_client"
    )
    with SummaryQueryServer(engine, workers=4, request_timeout=5.0) as srv:
        host, port = srv.address
        plan = FaultPlan().drop("client:send", after=1, times=1)
        with use_injector(FaultInjector(plan, seed=seed)) as injector:
            with SummaryServiceClient(
                host, port,
                retry_policy=_quiet_policy(), retry_budget=10.0, seed=seed,
            ) as client:
                assert client.ping() == "pong"
                # This request's transport drops; the client must
                # reconnect and still return the exact answer.
                node = 17
                got = set(client.neighbors(node))
        assert injector.fired_count("client:send") == 1, "drop did not fire"
    want = neighbor_query(rep, node)
    assert got == want, "retried answer is wrong"
    retries_after = _counter_value(
        "repro_resilience_retries_total", component="service_client"
    )
    assert retries_after > retries_before, "retry not recorded in metrics"
    return "dropped connection retried transparently, answer exact"


def scenario_checkpoint_corrupt_resume(seed: int) -> str:
    graph = _graph(seed)
    iterations = 12
    baseline = MagsDMSummarizer(iterations=iterations, seed=seed).summarize(
        graph
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(tmp, keep=5)
        interrupted = MagsDMSummarizer(
            iterations=iterations, seed=seed
        ).configure_checkpointing(store, interval=2)
        plan = FaultPlan().crash("summarize:iteration", after=7)
        try:
            with use_injector(FaultInjector(plan, seed=seed)):
                interrupted.summarize(graph)
        except InjectedFault:
            pass
        else:
            raise AssertionError("run was not interrupted")
        steps = store.steps()
        assert steps, "no checkpoints were written"
        # Corrupt the newest snapshot on disk; resume must skip it.
        newest = store.path_for(steps[-1])
        newest.write_bytes(newest.read_bytes()[:-40] + b"garbage!")
        resumed = MagsDMSummarizer(
            iterations=iterations, seed=seed
        ).configure_checkpointing(store, interval=2, resume=True)
        result = resumed.summarize(graph)
    verify_lossless(graph, result.representation)
    assert result.relative_size == baseline.relative_size, (
        f"resumed run diverged: {result.relative_size} "
        f"vs {baseline.relative_size}"
    )
    corrupt_skips = _counter_value(
        "repro_resilience_checkpoints_total", event="corrupt_skipped"
    )
    assert corrupt_skips >= 1, "corrupt checkpoint skip not recorded"
    return (
        f"crash + corrupt checkpoint resumed to relative_size="
        f"{result.relative_size:.4f} (matches baseline)"
    )


def scenario_degraded_serving(seed: int) -> str:
    graph = _graph(seed)
    rep = (
        MagsDMSummarizer(iterations=6, seed=seed)
        .summarize(graph)
        .representation
    )
    engine = QueryEngine(rep, cache_size=128, degraded=True)
    expired = time.monotonic()  # an already-spent deadline
    response = engine.query(
        {"id": 1, "op": "khop", "node": 3, "k": 4}, deadline=expired
    )
    assert response["ok"] and response.get("degraded") is True, response
    response = engine.query(
        {"id": 2, "op": "pagerank", "node": 3}, deadline=expired
    )
    assert response["ok"] and response.get("degraded") is True, response
    assert isinstance(response["result"], float)
    degraded = engine.metrics.snapshot()["resilience"]["degraded_by_op"]
    assert degraded.get("khop", 0) >= 1 and degraded.get("pagerank", 0) >= 1
    return "zero-deadline khop/pagerank served degraded, flagged, counted"


def scenario_slo_gate(seed: int) -> str:
    """The SLO gate over live telemetry: a healthy server under real
    traffic must stay inside the default error budgets, and an
    impossible latency objective must be reported as violated with a
    burn rate > 1 (the gate actually fires)."""
    from repro.obs.slo import SLO, DEFAULT_SLOS, evaluate_slos

    graph = _graph(seed)
    rep = (
        MagsDMSummarizer(iterations=6, seed=seed)
        .summarize(graph)
        .representation
    )
    engine = QueryEngine(rep, cache_size=128)
    with SummaryQueryServer(engine, workers=4) as srv:
        host, port = srv.address
        with SummaryServiceClient(host, port) as client:
            for q in range(120):
                client.neighbors(q % rep.n)
            telemetry = client.telemetry()
    snapshots = {"server": telemetry}

    results = evaluate_slos(snapshots, DEFAULT_SLOS)
    violated = [r.slo.name for r in results if not r.ok]
    assert not violated, f"healthy server violated SLOs: {violated}"
    burns = {r.slo.name: r.budget_burn for r in results}

    impossible = SLO(
        "latency-impossible", "latency", objective=1e-6, percentile=99.0
    )
    (gate,) = evaluate_slos(snapshots, [impossible])
    assert not gate.ok, "impossible latency SLO was not flagged"
    assert gate.budget_burn > 1.0, (
        f"violated SLO burn must exceed 1, got {gate.budget_burn}"
    )
    return (
        f"defaults OK (burn availability={burns['availability']:.2f}, "
        f"latency={burns['latency-p99']:.2f}); impossible objective "
        f"fired with burn={gate.budget_burn:.0f}"
    )


def scenario_ingest_kill9_recovery(seed: int) -> str:
    """``kill -9`` a durable server mid-stream; restart must lose
    nothing acknowledged.

    The kill instant is timing-chosen (a timer fires while the writer
    streams as fast as the fsync path allows), so every assertion is
    prefix-invariant: whatever the acknowledged count turned out to
    be, the recovered state must be the oracle of exactly the durable
    prefix — acked batches plus at most one in-flight batch whose ack
    was lost to the kill — never a torn or divergent state."""
    import random
    import threading

    from repro.cluster.manager import _SERVING_RE, InstanceProcess
    from repro.cluster.topology import InstanceSpec
    from repro.core.serialization import save_representation
    from repro.core.verify import deep_audit
    from repro.durability import WriteAheadLog, recover_engine, replay_tail
    from repro.dynamic.summary import DynamicGraphSummary
    from repro.graph.graph import Graph
    from repro.resilience.checkpoint import CheckpointStore
    from repro.service.ingest import MutableQueryEngine
    from repro.service.protocol import ProtocolError

    graph = _graph(seed)
    rep = (
        MagsDMSummarizer(iterations=6, seed=seed)
        .summarize(graph)
        .representation
    )

    # Deterministic, always-applicable mutation script.
    rng = random.Random(seed)
    edges = set(graph.edges())
    script = []
    for _ in range(2000):
        if edges and rng.random() < 0.4:
            edge = rng.choice(sorted(edges))
            edges.discard(edge)
            script.append(("-", *edge))
        else:
            while True:
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                pair = (min(u, v), max(u, v))
                if u != v and pair not in edges:
                    break
            edges.add(pair)
            script.append(("+", *pair))

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = Path(tmp)
        artifact = tmpdir / "summary.bin"
        save_representation(artifact, rep)
        wal_dir = tmpdir / "wal"

        def spawn() -> tuple[InstanceProcess, int]:
            proc = InstanceProcess(
                InstanceSpec(shard=0, replica=0, host="127.0.0.1", port=0),
                artifact,
                workers=2,
                # Compaction off: the offline audit below must see the
                # whole tail as WAL records, deterministically.
                extra_args=[
                    "--wal-dir", str(wal_dir), "--compact-interval", "0",
                ],
            )
            proc.start(startup_timeout=120.0)
            match = _SERVING_RE.search(proc.output_tail())
            assert match, proc.output_tail()
            return proc, int(match.group(2))

        server, port = spawn()
        acked = 0
        killer = threading.Timer(0.35, server.kill)
        killer.start()
        try:
            with SummaryServiceClient("127.0.0.1", port) as client:
                for i, mutation in enumerate(script):
                    try:
                        result = client.ingest(
                            [list(mutation)], stream="chaos", seq=i
                        )
                    except (OSError, ProtocolError):
                        break  # the kill landed
                    assert result["applied"] == 1, result
                    acked = i + 1
        finally:
            killer.cancel()
            server.kill()
        assert acked > 0, "no mutation was acknowledged before the kill"

        # Restart on the same WAL; wait out the background replay.
        server, port = spawn()
        try:
            with SummaryServiceClient("127.0.0.1", port) as client:
                deadline = time.monotonic() + 60.0
                while True:
                    response = client.request_raw({"id": 1, "op": "ping"})
                    if not response.get("degraded"):
                        break
                    assert time.monotonic() < deadline, "replay stuck"
                    time.sleep(0.02)
                epoch = response["epoch"]
                assert acked <= epoch <= acked + 1, (
                    f"acknowledged {acked} mutation(s) but recovered "
                    f"epoch={epoch}: acknowledged writes were lost"
                )
                # Cross-restart idempotence: replaying the last durable
                # (stream, seq) is absorbed by the recovered dedup map.
                retry = client.ingest(
                    [list(script[epoch - 1])], stream="chaos", seq=epoch - 1
                )
                assert retry.get("duplicate") is True, retry
                # The served graph is the oracle of the durable prefix.
                oracle = set(graph.edges())
                for sign, u, v in script[:epoch]:
                    (oracle.add if sign == "+" else oracle.discard)((u, v))
                got = set()
                for node in range(graph.n):
                    for peer in client.neighbors(node):
                        got.add((min(node, peer), max(node, peer)))
                assert got == oracle, "recovered graph diverged from oracle"
        finally:
            server.kill()  # a second SIGKILL: the tail must survive too

        # Offline audit of the durable state left behind: replay it
        # in-process, check bit-identity against an uninterrupted run
        # of the same prefix, and deep-audit the summary.
        replayed_before = _counter_value(
            "repro_wal_records_total", event="replayed"
        )
        wal = WriteAheadLog(wal_dir, fsync="never", registry=get_registry())
        recovered, pending, report = recover_engine(
            rep, wal, CheckpointStore(wal_dir / "checkpoints"),
            engine_factory=lambda d: MutableQueryEngine(d, wal=wal),
        )
        replay_tail(recovered, pending, report)
        wal.close()
        assert recovered.epoch == epoch, (recovered.epoch, epoch)
        uninterrupted = MutableQueryEngine(
            DynamicGraphSummary.from_representation(rep)
        )
        for i, mutation in enumerate(script[:epoch]):
            uninterrupted.ingest("chaos", i, [list(mutation)])
        assert recovered.representation == uninterrupted.representation, (
            "recovered summary is not bit-identical to an uninterrupted run"
        )
        # optimal=False: an online-mutated summary stays lossless and
        # structurally sound but is not the optimal re-encoding.
        findings = deep_audit(
            recovered.representation,
            Graph(graph.n, sorted(oracle)),
            optimal=False,
        )
        assert not findings, findings
        replayed = _counter_value(
            "repro_wal_records_total", event="replayed"
        ) - replayed_before
        assert replayed >= 1, "WAL replay not visible in metrics"
    return (
        f"kill -9 after {acked} ack(s): recovered epoch={epoch}, "
        f"0 acknowledged mutations lost, bit-identical, deep audit clean"
    )


def scenario_maintenance_kill9_recovery(seed: int) -> str:
    """``kill -9`` a durable server while background maintenance is
    re-summarizing; recovery must replay every committed pass
    bit-identically and converge to an optimally re-encoded summary.

    Three lives of one WAL directory: (1) sustained acknowledged
    ingest with maintenance ticking, killed mid-stream; (2) restart,
    replay, maintenance starts committing ``resummarize`` records,
    killed again the moment one is observed — the second kill lands
    mid-maintenance-activity; (3) restart again and let maintenance
    drain every dirty super-node.  The offline audit then replays the
    surviving WAL twice (and once across a mid-tail checkpoint cut):
    all three replays must agree bit-for-bit, and because the last
    committed record is a full re-encode of a clean summary,
    ``deep_audit(optimal=True)`` must pass — no waiver."""
    import json
    import random
    import threading

    from repro.cluster.manager import _SERVING_RE, InstanceProcess
    from repro.cluster.topology import InstanceSpec
    from repro.core.serialization import (
        load_representation,
        save_representation,
    )
    from repro.core.verify import deep_audit
    from repro.durability import (
        ResummarizeRecord,
        WriteAheadLog,
        engine_state,
        recover_engine,
        replay_tail,
    )
    from repro.graph.graph import Graph
    from repro.resilience.checkpoint import CheckpointStore
    from repro.service.client import ServiceError
    from repro.service.ingest import MutableQueryEngine
    from repro.service.protocol import ProtocolError

    graph = _graph(seed)
    rep = (
        MagsDMSummarizer(iterations=6, seed=seed)
        .summarize(graph)
        .representation
    )

    rng = random.Random(seed + 1)
    edges = set(graph.edges())
    script = []
    for _ in range(2000):
        if edges and rng.random() < 0.4:
            edge = rng.choice(sorted(edges))
            edges.discard(edge)
            script.append(("-", *edge))
        else:
            while True:
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                pair = (min(u, v), max(u, v))
                if u != v and pair not in edges:
                    break
            edges.add(pair)
            script.append(("+", *pair))

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = Path(tmp)
        artifact = tmpdir / "summary.bin"
        save_representation(artifact, rep)
        wal_dir = tmpdir / "wal"

        def spawn() -> tuple[InstanceProcess, int]:
            proc = InstanceProcess(
                InstanceSpec(shard=0, replica=0, host="127.0.0.1", port=0),
                artifact,
                workers=2,
                # Compaction off so the offline audit sees the whole
                # history as WAL records; maintenance on a tight tick
                # with a recorded merge cap.
                extra_args=[
                    "--wal-dir", str(wal_dir),
                    "--compact-interval", "0",
                    "--maintenance-interval", "0.05",
                    "--maintenance-max-supernodes", "24",
                    "--maintenance-budget-merges", "256",
                    "--maintenance-budget-seconds", "0",
                ],
            )
            proc.start(startup_timeout=120.0)
            match = _SERVING_RE.search(proc.output_tail())
            assert match, proc.output_tail()
            return proc, int(match.group(2))

        def wait_replayed(client) -> dict:
            deadline = time.monotonic() + 60.0
            while True:
                response = client.request_raw({"id": 1, "op": "ping"})
                if not response.get("degraded"):
                    return response
                assert time.monotonic() < deadline, "replay stuck"
                time.sleep(0.02)

        # Life 1: acknowledged ingest + maintenance ticking, kill -9.
        server, port = spawn()
        acked = 0
        killer = threading.Timer(0.35, server.kill)
        killer.start()
        try:
            with SummaryServiceClient("127.0.0.1", port) as client:
                for i, mutation in enumerate(script):
                    try:
                        result = client.ingest(
                            [list(mutation)], stream="maint-chaos", seq=i
                        )
                    except (OSError, ProtocolError):
                        break
                    assert result["applied"] == 1, result
                    acked = i + 1
        finally:
            killer.cancel()
            server.kill()
        assert acked > 0, "no mutation was acknowledged before the kill"

        # Life 2: recover, then kill again the moment maintenance has
        # committed at least one pass — mid-activity by construction.
        server, port = spawn()
        try:
            with SummaryServiceClient("127.0.0.1", port) as client:
                wait_replayed(client)
                # Cross-restart dedup: the last durable batch is either
                # the last acknowledged one or the in-flight one whose
                # ack the kill swallowed; a rewind rejection for the
                # former proves the recovered dedup map knows the
                # latter.
                try:
                    retry = client.ingest(
                        [list(script[acked - 1])],
                        stream="maint-chaos", seq=acked - 1,
                    )
                except ServiceError:
                    retry = client.ingest(
                        [list(script[acked])],
                        stream="maint-chaos", seq=acked,
                    )
                assert retry.get("duplicate") is True, retry
                deadline = time.monotonic() + 60.0
                while True:
                    maint = client.stats()["maintenance"]
                    if maint["passes"] >= 1:
                        break
                    assert time.monotonic() < deadline, (
                        f"maintenance never committed a pass: {maint}"
                    )
                    time.sleep(0.01)
        finally:
            server.kill()

        # Life 3: recover once more and let maintenance drain.
        server, port = spawn()
        try:
            with SummaryServiceClient("127.0.0.1", port) as client:
                wait_replayed(client)
                deadline = time.monotonic() + 120.0
                while True:
                    maint = client.stats()["maintenance"]
                    if maint["dirty_supernodes"] == 0:
                        break
                    assert time.monotonic() < deadline, (
                        f"maintenance never converged: {maint}"
                    )
                    time.sleep(0.02)
                converged_passes = maint["passes"]
                # The served graph is still the oracle of the durable
                # mutation prefix (re-encoding must never change it).
                got = set()
                for node in range(graph.n):
                    for peer in client.neighbors(node):
                        got.add((min(node, peer), max(node, peer)))
        finally:
            server.kill()

        # Offline audit of what the three lives left behind.
        wal = WriteAheadLog(wal_dir, fsync="never", registry=get_registry())
        records = list(wal.records(after_lsn=0))
        resummarized = [
            r for r in records if isinstance(r, ResummarizeRecord)
        ]
        assert resummarized, "no resummarize record survived the kills"
        durable = sum(
            1 for r in records if not isinstance(r, ResummarizeRecord)
        )
        assert acked <= durable <= acked + 1, (acked, durable)
        oracle = set(graph.edges())
        for sign, u, v in script[:durable]:
            (oracle.add if sign == "+" else oracle.discard)((u, v))
        assert got == oracle, "served graph diverged from oracle"

        # Replay from the artifact the server itself loaded: replay
        # determinism is member-order-sensitive (union-find roots
        # follow member order, serialization stores it sorted), so the
        # audit must start from the same bytes the server did.
        base = load_representation(artifact)

        def replay_all(tail):
            engine, pending, report = recover_engine(
                base, None, None,
                engine_factory=lambda d: MutableQueryEngine(d),
            )
            replay_tail(engine, list(tail), report)
            return engine

        first = replay_all(records)
        second = replay_all(records)
        assert first.representation == second.representation, (
            "independent WAL replays diverged"
        )
        assert first.epoch == second.epoch
        assert (
            first._dynamic.dirty_supernodes()
            == second._dynamic.dirty_supernodes()
        )
        # Mid-tail checkpoint cut: replaying half, checkpointing, and
        # recovering from that checkpoint plus the rest must land on
        # the same bits as the straight-through replay.
        half = len(records) // 2
        prefix = replay_all(records[:half])
        store = CheckpointStore(tmpdir / "cut-checkpoints")
        store.save(engine_state(prefix), step=prefix.applied_lsn)
        resumed, pending, report = recover_engine(
            base, None, store,
            engine_factory=lambda d: MutableQueryEngine(d),
        )
        replay_tail(resumed, records[half:], report)
        assert resumed.representation == first.representation, (
            "checkpoint-cut replay diverged from straight-through replay"
        )
        assert json.dumps(
            engine_state(resumed), sort_keys=True
        ) == json.dumps(engine_state(first), sort_keys=True)
        # Replayed maintenance passes are observable in metrics (each
        # engine carries its own registry).
        replayed_passes = int(
            first.metrics.registry.counter(
                "repro_maintenance_passes_total", outcome="committed"
            ).value
        )
        assert replayed_passes >= len(resummarized), replayed_passes
        # Converged maintenance leaves *the* optimal encoding of its
        # partition — the full audit, waiver removed.
        assert first._dynamic.dirty_supernodes() == {}, (
            "replay did not converge with the live run"
        )
        findings = deep_audit(
            first.representation,
            Graph(graph.n, sorted(oracle)),
            optimal=True,
        )
        assert not findings, findings
        wal.close()
    return (
        f"kill -9 x2 around {len(resummarized)} committed maintenance "
        f"pass(es): replay bit-identical (straight, repeated, and "
        f"checkpoint-cut), converged after {converged_passes} pass(es), "
        f"deep_audit(optimal=True) clean"
    )


def _replication_script(graph, seed: int, length: int) -> list:
    """Deterministic, always-applicable mutation script."""
    import random

    rng = random.Random(seed)
    edges = set(graph.edges())
    script = []
    for _ in range(length):
        if edges and rng.random() < 0.4:
            edge = rng.choice(sorted(edges))
            edges.discard(edge)
            script.append(("-", *edge))
        else:
            while True:
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                pair = (min(u, v), max(u, v))
                if u != v and pair not in edges:
                    break
            edges.add(pair)
            script.append(("+", *pair))
    return script


def _spawn_replica(artifact, wal_dir, *, replica, port, role,
                   follower_ports=(), acks="quorum"):
    """One replicated serve subprocess; returns ``(proc, bound_port)``."""
    from repro.cluster.manager import _SERVING_RE, InstanceProcess
    from repro.cluster.topology import InstanceSpec

    extra = [
        "--wal-dir", str(wal_dir),
        "--compact-interval", "0",
        "--repl-role", role,
    ]
    if role == "primary":
        for fport in follower_ports:
            extra += ["--repl-follower", f"127.0.0.1:{fport}"]
        extra += ["--repl-acks", acks]
    proc = InstanceProcess(
        InstanceSpec(shard=0, replica=replica, host="127.0.0.1", port=port),
        artifact,
        workers=2,
        extra_args=extra,
    )
    proc.start(startup_timeout=120.0)
    match = _SERVING_RE.search(proc.output_tail())
    assert match, proc.output_tail()
    return proc, int(match.group(2))


def _recover_offline(artifact, wal_dir):
    """Recover a dead replica's durable state in-process.

    The base loads from the serialized ``artifact`` — the same bytes
    the server process started from — because replay determinism is
    member-order-sensitive (see ``scenario_maintenance_kill9_recovery``).
    """
    from repro.core.serialization import load_representation
    from repro.durability import WriteAheadLog, recover_engine, replay_tail
    from repro.resilience.checkpoint import CheckpointStore
    from repro.service.ingest import MutableQueryEngine

    wal = WriteAheadLog(wal_dir, fsync="never")
    engine, pending, report = recover_engine(
        load_representation(artifact), wal,
        CheckpointStore(wal_dir / "checkpoints"),
        engine_factory=lambda d: MutableQueryEngine(d, wal=wal),
    )
    replay_tail(engine, pending, report)
    wal.close()
    return engine


def _wait_replication_drained(port: int, timeout: float = 60.0) -> dict:
    """Poll a primary's ``repl_status`` until every follower link is
    healthy with zero lag; returns the final status."""
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        try:
            with SummaryServiceClient("127.0.0.1", port) as client:
                last = client.repl_status()
        except (OSError, ValueError):
            time.sleep(0.1)
            continue
        followers = last.get("followers", [])
        if followers and all(
            f.get("healthy") and f.get("lag") == 0 for f in followers
        ):
            return last
        time.sleep(0.1)
    raise AssertionError(f"followers never drained: {last}")


def scenario_replicated_primary_kill9_failover(seed: int) -> str:
    """``kill -9`` the primary of a replicas=2 ``acks=quorum`` shard
    mid-stream; the router must auto-promote, the client's retried
    batches must dedup, and nothing acknowledged may be lost.

    A two-replica shard (r0 primary, r1 follower) serves a sustained
    acknowledged mutation stream through an in-process
    :class:`RouterEngine`.  Mid-stream the primary is SIGKILLed and
    then revived as a follower (quorum needs both replicas back).
    Every batch is pushed until acknowledged — retries reuse the same
    ``(stream, seq)`` so a batch whose ack the kill swallowed converges
    as ``duplicate``.  Afterwards: the router must have promoted on
    its own at a higher term, the revived stale replica must have been
    demoted and caught up (snapshot across the term change), the
    served graph must equal the oracle of every acknowledged batch,
    and both replicas' durable states must recover bit-identically
    offline and pass ``deep_audit``."""
    import json
    import threading

    from repro.cluster.router import RouterEngine
    from repro.cluster.topology import ClusterSpec, InstanceSpec
    from repro.core.serialization import save_representation
    from repro.core.verify import deep_audit
    from repro.durability import engine_state
    from repro.graph.graph import Graph
    from repro.service.engine import QueryError

    graph = _graph(seed)
    rep = (
        MagsDMSummarizer(iterations=6, seed=seed)
        .summarize(graph)
        .representation
    )
    script = _replication_script(graph, seed + 2, 300)
    kill_at = 40

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = Path(tmp)
        artifact = tmpdir / "summary.bin"
        save_representation(artifact, rep)
        wal0, wal1 = tmpdir / "wal-r0", tmpdir / "wal-r1"

        follower, f_port = _spawn_replica(
            artifact, wal1, replica=1, port=0, role="follower",
        )
        primary, p_port = _spawn_replica(
            artifact, wal0, replica=0, port=0, role="primary",
            follower_ports=[f_port], acks="quorum",
        )
        spec = ClusterSpec(
            shards=1, replicas=2, seed=seed,
            router_host="127.0.0.1", router_port=1,  # in-process: unused
            instances=[
                InstanceSpec(shard=0, replica=0,
                             host="127.0.0.1", port=p_port),
                InstanceSpec(shard=0, replica=1,
                             host="127.0.0.1", port=f_port),
            ],
            n=graph.n, acks="quorum",
        )
        router = RouterEngine(
            spec,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.05, max_delay=0.2
            ),
        )
        procs = {"r0": primary, "r1": follower}
        revival = []
        try:
            def ingest(i: int) -> dict:
                return router.query({
                    "op": "ingest", "stream": "repl-chaos", "seq": i,
                    "mutations": [list(script[i])],
                })["result"]

            def revive():
                # The supervisor rejoins a dead node as a follower;
                # the router (or the acting primary's shipper) decides
                # what it becomes.
                procs["r0"], __ = _spawn_replica(
                    artifact, wal0, replica=0, port=p_port,
                    role="follower",
                )

            retried = 0
            for i in range(len(script)):
                if i == kill_at:
                    # SIGKILL mid-stream, then revive concurrently
                    # with the client's retries: under acks=quorum the
                    # promoted survivor cannot ack alone.
                    procs["r0"].kill()
                    reviver = threading.Thread(target=revive)
                    reviver.start()
                    revival.append(reviver)
                attempts = 0
                while True:
                    try:
                        result = ingest(i)
                        break
                    except QueryError:
                        attempts += 1
                        assert attempts < 120, (
                            f"batch {i} never acknowledged after the "
                            f"failover"
                        )
                        time.sleep(0.25)
                retried += 1 if attempts else 0
                assert (
                    result.get("applied") == 1
                    or result["shards"]["0"].get("duplicate")
                ), result
            for reviver in revival:
                reviver.join(timeout=120.0)

            # The router promoted on its own: a higher term, and at
            # least one promotion counted.
            pool = router._shards[0]
            assert pool.term >= 2, pool.term
            promoted = int(
                router.metrics.registry.counter(
                    "repro_replication_promotions_total", shard="0"
                ).value
            )
            assert promoted >= 1, "router never promoted"

            # Whoever ended up primary: its follower (the revived
            # stale replica or the original follower) must drain to
            # zero lag, demoted to follower at the new term.
            acting = spec.instances[pool.primary]
            status = _wait_replication_drained(acting.port)
            assert status["role"] == "primary", status
            other = spec.instances[1 - pool.primary]
            with SummaryServiceClient(
                "127.0.0.1", other.port
            ) as client:
                peer = client.repl_status()
            assert peer["role"] == "follower", peer
            assert peer["term"] == status["term"] >= 2, (peer, status)
            assert peer["applied_lsn"] == status["applied_lsn"]

            # Zero acknowledged mutations lost: the served graph is
            # the oracle of the full acknowledged script.
            oracle = set(graph.edges())
            for sign, u, v in script:
                (oracle.add if sign == "+" else oracle.discard)((u, v))
            got = set()
            for node in range(graph.n):
                response = router.query({"op": "neighbors", "node": node})
                for peer_node in response["result"]:
                    got.add(
                        (min(node, peer_node), max(node, peer_node))
                    )
            assert got == oracle, "served graph diverged from oracle"
        finally:
            router.close()
            for proc in procs.values():
                proc.kill()

        # Offline: both replicas' durable states recover to the same
        # bits, and the summary deep-audits clean.
        r0 = _recover_offline(artifact, wal0)
        r1 = _recover_offline(artifact, wal1)
        assert r0.representation == r1.representation, (
            "replicas' recovered summaries diverged"
        )
        assert json.dumps(
            engine_state(r0), sort_keys=True
        ) == json.dumps(engine_state(r1), sort_keys=True), (
            "replicas' recovered states are not bit-identical"
        )
        findings = deep_audit(
            r0.representation, Graph(graph.n, sorted(oracle)),
            optimal=False,
        )
        assert not findings, findings
    return (
        f"primary kill -9 at batch {kill_at}/{len(script)}: "
        f"auto-promoted to term {status['term']}, {retried} batch(es) "
        f"retried through failover, 0 acknowledged mutations lost, "
        f"replicas bit-identical, deep audit clean"
    )


def scenario_follower_kill_rejoin(seed: int) -> str:
    """``kill -9`` a follower mid-stream; the primary keeps serving
    (``acks=leader``), and the rejoined follower must catch up to a
    byte-identical log and bit-identical state without operator help.

    The follower is SIGKILLed while the primary streams acknowledged
    mutations, revived on the same port a few dozen batches later, and
    the primary's background shipper must reconnect and drain the gap
    incrementally (same term — no snapshot).  Afterwards both WAL
    directories must hold byte-identical logs and recover offline to
    bit-identical engines."""
    import json

    from repro.core.serialization import save_representation
    from repro.core.verify import deep_audit
    from repro.durability import engine_state
    from repro.graph.graph import Graph

    graph = _graph(seed)
    rep = (
        MagsDMSummarizer(iterations=6, seed=seed)
        .summarize(graph)
        .representation
    )
    script = _replication_script(graph, seed + 3, 120)
    kill_at, revive_at = 40, 80

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = Path(tmp)
        artifact = tmpdir / "summary.bin"
        save_representation(artifact, rep)
        wal0, wal1 = tmpdir / "wal-r0", tmpdir / "wal-r1"

        follower, f_port = _spawn_replica(
            artifact, wal1, replica=1, port=0, role="follower",
        )
        primary, p_port = _spawn_replica(
            artifact, wal0, replica=0, port=0, role="primary",
            follower_ports=[f_port], acks="leader",
        )
        try:
            with SummaryServiceClient("127.0.0.1", p_port) as client:
                for i, mutation in enumerate(script):
                    if i == kill_at:
                        follower.kill()
                    elif i == revive_at:
                        follower, __ = _spawn_replica(
                            artifact, wal1, replica=1, port=f_port,
                            role="follower",
                        )
                    result = client.ingest(
                        [list(mutation)], stream="rejoin-chaos", seq=i
                    )
                    # Leader acks: the dead follower never blocks the
                    # write path.
                    assert result["applied"] == 1, result
            status = _wait_replication_drained(p_port)
            assert status["role"] == "primary" and status["term"] == 1
        finally:
            primary.kill()
            follower.kill()

        # Same term, so the rejoin must have been an incremental WAL
        # ship: the follower's log is *byte*-identical to the
        # primary's (its torn tail from the kill was repaired, then
        # overwritten by the re-shipped suffix).
        def log_bytes(wal_dir):
            return b"".join(
                path.read_bytes()
                for path in sorted(wal_dir.glob("wal-*.log"))
            )

        assert log_bytes(wal0) == log_bytes(wal1), (
            "follower WAL is not byte-identical to the primary's"
        )
        r0 = _recover_offline(artifact, wal0)
        r1 = _recover_offline(artifact, wal1)
        assert r0.epoch == r1.epoch == len(script)
        assert r0.representation == r1.representation
        assert json.dumps(
            engine_state(r0), sort_keys=True
        ) == json.dumps(engine_state(r1), sort_keys=True)
        oracle = set(graph.edges())
        for sign, u, v in script:
            (oracle.add if sign == "+" else oracle.discard)((u, v))
        findings = deep_audit(
            r0.representation, Graph(graph.n, sorted(oracle)),
            optimal=False,
        )
        assert not findings, findings
    return (
        f"follower kill -9 at batch {kill_at}, rejoin at {revive_at}: "
        f"incremental catch-up, WALs byte-identical, recovered states "
        f"bit-identical, deep audit clean"
    )


def _counter_value(name: str, **labels) -> int:
    return int(get_registry().counter(name, **labels).value)


SCENARIOS = [
    scenario_worker_crash_retried,
    scenario_worker_dead_fallback,
    scenario_connection_drop,
    scenario_checkpoint_corrupt_resume,
    scenario_degraded_serving,
    scenario_slo_gate,
    scenario_ingest_kill9_recovery,
    scenario_maintenance_kill9_recovery,
    scenario_replicated_primary_kill9_failover,
    scenario_follower_kill_rejoin,
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    failures = 0
    for scenario in SCENARIOS:
        name = scenario.__name__.removeprefix("scenario_")
        try:
            detail = scenario(args.seed)
        except Exception as exc:  # noqa: BLE001 - harness must report all
            failures += 1
            print(f"FAIL {name}: {type(exc).__name__}: {exc}")
        else:
            print(f"{PASS} {name}: {detail}")
    faults = _counter_value_total("repro_resilience_faults_injected_total")
    print(f"total faults injected: {faults}")
    if failures:
        print(f"chaos suite FAILED ({failures} scenario(s))")
        return 1
    assert faults > 0, "no faults were injected; suite is vacuous"
    print("chaos suite PASSED")
    return 0


def _counter_value_total(name: str) -> int:
    return int(
        sum(
            metric.value
            for __, metric in get_registry().family(name)
        )
    )


if __name__ == "__main__":
    sys.exit(main())
