"""Seeded chaos suite for the resilience subsystem.

What CI runs after the unit suite: a battery of fault-injection
scenarios, each fully deterministic under ``--seed``, asserting that
the system's end state is *correct* despite the faults — not merely
that it survived:

1. **Killed worker (retried)** — a distributed worker crashes on its
   first attempt; the coordinator retries it and the final
   representation is lossless and identical to the fault-free run.
2. **Dead worker (fallback)** — a worker crashes on every attempt;
   the coordinator reassigns it to the singleton-partition fallback
   and the result is still a lossless representation accepted by
   :func:`repro.core.verify.verify_lossless`.
3. **Dropped connection** — the service client's transport drops
   mid-request; with a retry policy the client reconnects and the
   answer matches Algorithm 6 exactly.
4. **Crash + corrupted checkpoint + resume** — a Mags-DM run is
   killed mid-iteration, its newest checkpoint is then corrupted on
   disk; ``resume`` skips the corrupt snapshot, restarts from the
   previous one, and the finished run's relative size matches the
   uninterrupted baseline.
5. **Degraded serving** — with a zero deadline and degraded mode on,
   ``khop``/``pagerank`` return flagged approximate answers instead
   of timeout errors.
6. **SLO gate** — a healthy server's live telemetry passes the
   default availability/latency SLOs, while an impossible latency
   objective is reported as violated with an error-budget burn > 1.

Every scenario also checks its events are observable through the
:mod:`repro.obs` metrics registry.

Run:  PYTHONPATH=src python tools/chaos_harness.py --seed 0
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.algorithms.mags_dm import MagsDMSummarizer  # noqa: E402
from repro.core.verify import verify_lossless  # noqa: E402
from repro.distributed.coordinator import DistributedSummarizer  # noqa: E402
from repro.graph import generators  # noqa: E402
from repro.obs.metrics import get_registry  # noqa: E402
from repro.queries.neighbors import neighbor_query  # noqa: E402
from repro.resilience import (  # noqa: E402
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    use_injector,
)
from repro.service import (  # noqa: E402
    QueryEngine,
    SummaryQueryServer,
    SummaryServiceClient,
)

PASS = "PASS"


def _graph(seed: int):
    return generators.planted_partition(240, 12, 0.6, 0.03, seed=seed)


def _quiet_policy() -> RetryPolicy:
    return RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


# ----------------------------------------------------------------------
def scenario_worker_crash_retried(seed: int) -> str:
    graph = _graph(seed)

    def summarizer():
        return DistributedSummarizer(
            workers=4, seed=seed, retry_policy=_quiet_policy()
        )

    baseline = summarizer().summarize(graph)
    plan = FaultPlan().crash("worker:1", times=1)
    with use_injector(FaultInjector(plan, seed=seed)) as injector:
        chaotic = summarizer().summarize(graph)
    assert injector.fired_count("worker:1") == 1, "fault did not fire"
    assert chaotic.worker_retries >= 1, "worker was not retried"
    assert chaotic.worker_failures == 0, "retry should have recovered"
    verify_lossless(graph, chaotic.representation)
    assert chaotic.relative_size == baseline.relative_size, (
        f"retried run diverged: {chaotic.relative_size} "
        f"vs {baseline.relative_size}"
    )
    return (
        f"worker crash retried, relative_size="
        f"{chaotic.relative_size:.4f} unchanged"
    )


def scenario_worker_dead_fallback(seed: int) -> str:
    graph = _graph(seed)
    plan = FaultPlan().crash("worker:2", times=10)  # > max_attempts
    with use_injector(FaultInjector(plan, seed=seed)):
        result = DistributedSummarizer(
            workers=4, seed=seed, retry_policy=_quiet_policy()
        ).summarize(graph)
    assert result.worker_failures == 1, "worker should be lost"
    assert result.fallback_workers == [2], result.fallback_workers
    verify_lossless(graph, result.representation)
    assert len(result.upload_bytes) == 4, "fallback upload not accounted"
    return (
        f"dead worker fell back to singletons, still lossless "
        f"(relative_size={result.relative_size:.4f})"
    )


def scenario_connection_drop(seed: int) -> str:
    graph = _graph(seed)
    rep = (
        MagsDMSummarizer(iterations=6, seed=seed)
        .summarize(graph)
        .representation
    )
    engine = QueryEngine(rep, cache_size=128)
    retries_before = _counter_value(
        "repro_resilience_retries_total", component="service_client"
    )
    with SummaryQueryServer(engine, workers=4, request_timeout=5.0) as srv:
        host, port = srv.address
        plan = FaultPlan().drop("client:send", after=1, times=1)
        with use_injector(FaultInjector(plan, seed=seed)) as injector:
            with SummaryServiceClient(
                host, port,
                retry_policy=_quiet_policy(), retry_budget=10.0, seed=seed,
            ) as client:
                assert client.ping() == "pong"
                # This request's transport drops; the client must
                # reconnect and still return the exact answer.
                node = 17
                got = set(client.neighbors(node))
        assert injector.fired_count("client:send") == 1, "drop did not fire"
    want = neighbor_query(rep, node)
    assert got == want, "retried answer is wrong"
    retries_after = _counter_value(
        "repro_resilience_retries_total", component="service_client"
    )
    assert retries_after > retries_before, "retry not recorded in metrics"
    return "dropped connection retried transparently, answer exact"


def scenario_checkpoint_corrupt_resume(seed: int) -> str:
    graph = _graph(seed)
    iterations = 12
    baseline = MagsDMSummarizer(iterations=iterations, seed=seed).summarize(
        graph
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(tmp, keep=5)
        interrupted = MagsDMSummarizer(
            iterations=iterations, seed=seed
        ).configure_checkpointing(store, interval=2)
        plan = FaultPlan().crash("summarize:iteration", after=7)
        try:
            with use_injector(FaultInjector(plan, seed=seed)):
                interrupted.summarize(graph)
        except InjectedFault:
            pass
        else:
            raise AssertionError("run was not interrupted")
        steps = store.steps()
        assert steps, "no checkpoints were written"
        # Corrupt the newest snapshot on disk; resume must skip it.
        newest = store.path_for(steps[-1])
        newest.write_bytes(newest.read_bytes()[:-40] + b"garbage!")
        resumed = MagsDMSummarizer(
            iterations=iterations, seed=seed
        ).configure_checkpointing(store, interval=2, resume=True)
        result = resumed.summarize(graph)
    verify_lossless(graph, result.representation)
    assert result.relative_size == baseline.relative_size, (
        f"resumed run diverged: {result.relative_size} "
        f"vs {baseline.relative_size}"
    )
    corrupt_skips = _counter_value(
        "repro_resilience_checkpoints_total", event="corrupt_skipped"
    )
    assert corrupt_skips >= 1, "corrupt checkpoint skip not recorded"
    return (
        f"crash + corrupt checkpoint resumed to relative_size="
        f"{result.relative_size:.4f} (matches baseline)"
    )


def scenario_degraded_serving(seed: int) -> str:
    graph = _graph(seed)
    rep = (
        MagsDMSummarizer(iterations=6, seed=seed)
        .summarize(graph)
        .representation
    )
    engine = QueryEngine(rep, cache_size=128, degraded=True)
    expired = time.monotonic()  # an already-spent deadline
    response = engine.query(
        {"id": 1, "op": "khop", "node": 3, "k": 4}, deadline=expired
    )
    assert response["ok"] and response.get("degraded") is True, response
    response = engine.query(
        {"id": 2, "op": "pagerank", "node": 3}, deadline=expired
    )
    assert response["ok"] and response.get("degraded") is True, response
    assert isinstance(response["result"], float)
    degraded = engine.metrics.snapshot()["resilience"]["degraded_by_op"]
    assert degraded.get("khop", 0) >= 1 and degraded.get("pagerank", 0) >= 1
    return "zero-deadline khop/pagerank served degraded, flagged, counted"


def scenario_slo_gate(seed: int) -> str:
    """The SLO gate over live telemetry: a healthy server under real
    traffic must stay inside the default error budgets, and an
    impossible latency objective must be reported as violated with a
    burn rate > 1 (the gate actually fires)."""
    from repro.obs.slo import SLO, DEFAULT_SLOS, evaluate_slos

    graph = _graph(seed)
    rep = (
        MagsDMSummarizer(iterations=6, seed=seed)
        .summarize(graph)
        .representation
    )
    engine = QueryEngine(rep, cache_size=128)
    with SummaryQueryServer(engine, workers=4) as srv:
        host, port = srv.address
        with SummaryServiceClient(host, port) as client:
            for q in range(120):
                client.neighbors(q % rep.n)
            telemetry = client.telemetry()
    snapshots = {"server": telemetry}

    results = evaluate_slos(snapshots, DEFAULT_SLOS)
    violated = [r.slo.name for r in results if not r.ok]
    assert not violated, f"healthy server violated SLOs: {violated}"
    burns = {r.slo.name: r.budget_burn for r in results}

    impossible = SLO(
        "latency-impossible", "latency", objective=1e-6, percentile=99.0
    )
    (gate,) = evaluate_slos(snapshots, [impossible])
    assert not gate.ok, "impossible latency SLO was not flagged"
    assert gate.budget_burn > 1.0, (
        f"violated SLO burn must exceed 1, got {gate.budget_burn}"
    )
    return (
        f"defaults OK (burn availability={burns['availability']:.2f}, "
        f"latency={burns['latency-p99']:.2f}); impossible objective "
        f"fired with burn={gate.budget_burn:.0f}"
    )


def _counter_value(name: str, **labels) -> int:
    return int(get_registry().counter(name, **labels).value)


SCENARIOS = [
    scenario_worker_crash_retried,
    scenario_worker_dead_fallback,
    scenario_connection_drop,
    scenario_checkpoint_corrupt_resume,
    scenario_degraded_serving,
    scenario_slo_gate,
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    failures = 0
    for scenario in SCENARIOS:
        name = scenario.__name__.removeprefix("scenario_")
        try:
            detail = scenario(args.seed)
        except Exception as exc:  # noqa: BLE001 - harness must report all
            failures += 1
            print(f"FAIL {name}: {type(exc).__name__}: {exc}")
        else:
            print(f"{PASS} {name}: {detail}")
    faults = _counter_value_total("repro_resilience_faults_injected_total")
    print(f"total faults injected: {faults}")
    if failures:
        print(f"chaos suite FAILED ({failures} scenario(s))")
        return 1
    assert faults > 0, "no faults were injected; suite is vacuous"
    print("chaos suite PASSED")
    return 0


def _counter_value_total(name: str) -> int:
    return int(
        sum(
            metric.value
            for __, metric in get_registry().family(name)
        )
    )


if __name__ == "__main__":
    sys.exit(main())
