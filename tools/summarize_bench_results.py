"""Compute the aggregate ratios EXPERIMENTS.md quotes from the saved
bench reports (run after `pytest benchmarks/ --benchmark-only`).

Usage:  python tools/summarize_bench_results.py
        python tools/summarize_bench_results.py --diff-traces A.jsonl B.jsonl

The second form compares two trace files produced by
``python -m repro profile --trace-out`` and prints per-phase wall-time
deltas (the before/after table for an optimisation or ablation).
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

DEFAULT_RESULTS = Path(__file__).resolve().parent.parent / "bench_results"
RESULTS = DEFAULT_RESULTS


def _import_obs():
    """Import :mod:`repro.obs`, falling back to the in-repo ``src/``."""
    try:
        import repro.obs as obs
    except ImportError:
        src = Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))
        import repro.obs as obs
    return obs


def diff_traces(path_a: str, path_b: str) -> str:
    """Per-phase wall-time comparison of two trace JSONL files."""
    obs = _import_obs()
    a = obs.read_trace_jsonl(path_a)
    b = obs.read_trace_jsonl(path_b)

    def fmt(value, spec):
        return "-" if value is None else format(value, spec)

    lines = [
        f"{'phase':<24} {'a_s':>10} {'b_s':>10} {'delta_s':>10} {'ratio':>8}"
    ]
    for row in obs.diff_phase_totals(a, b):
        lines.append(
            f"{row['phase']:<24} {fmt(row['a_s'], '.4f'):>10} "
            f"{fmt(row['b_s'], '.4f'):>10} "
            f"{fmt(row['delta_s'], '+.4f'):>10} "
            f"{fmt(row['ratio'], '.3f'):>8}"
        )
    return "\n".join(lines)


def rows(
    name: str, columns: list[str], results: Path | None = None
) -> list[dict]:
    out: list[dict] = []
    base = results or RESULTS
    for line in (base / f"{name}.txt").read_text().splitlines():
        parts = line.split()
        if len(parts) < len(columns):
            continue
        if parts[0] in ("dataset", "Figures", "Figure", "Table", "Section"):
            continue
        if set(line.strip()) <= set("-= "):
            continue
        if "#" in line or "chart" in line or "=" in parts[0]:
            continue
        try:
            row = {}
            for i, col in enumerate(columns):
                row[col] = parts[i] if i < 2 else (
                    None if parts[i] == "-" else float(parts[i])
                )
            out.append(row)
        except ValueError:
            continue
    return out


def gmean(values: list[float]) -> float:
    values = [v for v in values if v]
    return math.exp(sum(math.log(v) for v in values) / len(values))


def cell(rows_: list[dict], key: str) -> dict:
    return {(r["dataset"], r["algorithm"]): r[key] for r in rows_}


def main() -> None:
    r46 = cell(rows("fig4_compactness_small", ["dataset", "algorithm", "rel"]), "rel")
    t46 = cell(rows("fig6_time_small", ["dataset", "algorithm", "t"]), "t")
    r57 = cell(rows("fig5_compactness_large", ["dataset", "algorithm", "rel"]), "rel")
    t57 = cell(rows("fig7_time_large", ["dataset", "algorithm", "t"]), "t")

    small = sorted({d for d, __ in r46})
    large = sorted({d for d, __ in r57})

    print("== compactness (small graphs)")
    for algo in ("Mags", "Mags-DM"):
        diffs = [
            100 * (r46[(d, algo)] - r46[(d, "Greedy")]) / r46[(d, "Greedy")]
            for d in small
        ]
        print(f"{algo} vs Greedy %: "
              + ", ".join(f"{d}:{x:+.2f}" for d, x in zip(small, diffs)))
    for other in ("LDME", "Slugger"):
        gap = 100 * (1 - gmean([r46[(d, "Greedy")] / r46[(d, other)] for d in small]))
        print(f"Greedy smaller than {other}: {gap:.1f}%")

    print("== compactness (large graphs)")
    for other in ("LDME", "Slugger"):
        vals = [
            r57[(d, "Mags")] / r57[(d, other)]
            for d in large
            if r57.get((d, other))
        ]
        print(f"Mags smaller than {other}: {100 * (1 - gmean(vals)):.1f}%")
    dm_gap = gmean([r57[(d, "Mags-DM")] / r57[(d, "Mags")] for d in large])
    print(f"Mags-DM vs Mags gap: {100 * (dm_gap - 1):.1f}%")

    print("== running time")
    print(f"Greedy / Mags (small): "
          f"{gmean([t46[(d, 'Greedy')] / t46[(d, 'Mags')] for d in small]):.1f}x")
    all_t = {**t46, **{k: v for k, v in t57.items() if v}}
    datasets = small + large
    for other in ("LDME", "Slugger"):
        vals = [
            all_t[(d, other)] / all_t[(d, "Mags")]
            for d in datasets
            if all_t.get((d, other))
        ]
        print(f"{other} / Mags (all): {gmean(vals):.1f}x")
    print(f"Mags / Mags-DM (all): "
          f"{gmean([all_t[(d, 'Mags')] / all_t[(d, 'Mags-DM')] for d in datasets]):.1f}x")
    large_ratio = gmean(
        [all_t[(d, "Mags")] / all_t[(d, "Mags-DM")] for d in large]
    )
    print(f"Mags / Mags-DM (large only): {large_ratio:.1f}x")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--diff-traces",
        nargs=2,
        metavar=("A", "B"),
        help="compare two profile trace JSONL files phase by phase",
    )
    cli_args = parser.parse_args()
    if cli_args.diff_traces:
        print(diff_traces(*cli_args.diff_traces))
    else:
        main()
