"""Differential fuzzer for the cost-calculus fast paths.

Runs randomized merge sequences over the generator zoo and, at every
step, checks the performance-tuned code in
:class:`repro.core.supernodes.SuperNodePartition` (the cached scalar
methods *and* the batched NumPy kernel ``savings_many``) against the
cache-free pure-Python oracle in :mod:`repro.core.reference`.

The contract being enforced is **bit identity**, not tolerance: every
compared value must satisfy ``==`` exactly (see ``docs/performance.md``
for why that is achievable).  Each step also runs
``partition.check_invariants()`` and, periodically, compares the
maintained total representation cost against a from-first-principles
recount.

Usage::

    PYTHONPATH=src python tools/diff_fuzz.py --seeds 200
    PYTHONPATH=src python tools/diff_fuzz.py --seeds 5 --verbose

Exit status is non-zero on the first mismatch, with a reproduction
line (seed + step) printed to stderr.  The CI ``perf`` job runs this
with ``--seeds 20``; ``tests/test_kernels.py`` smoke-runs a few seeds
on every test invocation.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path
from typing import Callable


def _import_repro():
    """Make ``repro`` importable when run straight from a checkout."""
    try:
        import repro  # noqa: F401
    except ImportError:
        src = Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


_import_repro()

from repro.core import reference  # noqa: E402
from repro.core import supernodes  # noqa: E402
from repro.core.supernodes import SuperNodePartition  # noqa: E402
from repro.graph import generators  # noqa: E402
from repro.graph.graph import Graph  # noqa: E402

#: The generator zoo: name -> seed -> Graph.  Sizes are kept small so
#: a 200-seed run stays in CPU seconds; the oracle is O(merges * n * d)
#: per run and dominates the cost.
ZOO: dict[str, Callable[[int], Graph]] = {
    "erdos_renyi": lambda s: generators.erdos_renyi(60, 0.08, seed=s),
    "barabasi_albert": lambda s: generators.barabasi_albert(70, 3, seed=s),
    "watts_strogatz": lambda s: generators.watts_strogatz(64, 6, 0.2, seed=s),
    "planted_partition": lambda s: generators.planted_partition(
        60, 6, 0.6, 0.02, seed=s
    ),
    "caveman": lambda s: generators.caveman(6, 8, seed=s),
    "rmat": lambda s: generators.rmat(6, 4, seed=s),
    "power_law": lambda s: generators.configuration_power_law(60, seed=s),
    "cliques_and_stars": lambda s: generators.cliques_and_stars(
        3, 6, 3, 7, noise_edges=10, seed=s
    ),
}


class Mismatch(AssertionError):
    """A fast-path value disagreed with the reference oracle."""


def _sample_pairs(
    partition: SuperNodePartition, rng: random.Random, count: int
) -> list[tuple[int, int]]:
    """Candidate pairs mixing 2-hop neighbors (the realistic case,
    where savings are nonzero) with uniform random root pairs (which
    exercise the disconnected/zero-saving branches)."""
    roots = sorted(partition.roots())
    if len(roots) < 2:
        return []
    pairs: list[tuple[int, int]] = []
    for _ in range(count):
        u = rng.choice(roots)
        w_u = list(partition.weights(u))
        if w_u and rng.random() < 0.8:
            x = rng.choice(w_u)
            two_hop = [y for y in partition.weights(x) if y != u] or w_u
            v = rng.choice(two_hop)
        else:
            v = rng.choice(roots)
        if v != u:
            pairs.append((u, v))
    # Group by first endpoint: the batched kernel's intended shape.
    pairs.sort()
    return pairs


def fuzz_one(seed: int, verbose: bool = False) -> int:
    """Run one randomized merge sequence; return comparisons made.

    Raises :class:`Mismatch` on any fast-vs-reference disagreement and
    ``AssertionError`` if ``check_invariants`` fails.
    """
    rng = random.Random(seed)
    name = rng.choice(sorted(ZOO))
    graph = ZOO[name](seed)
    partition = SuperNodePartition(graph)
    merges = rng.randrange(2, max(3, graph.n // 2))
    comparisons = 0
    if verbose:
        print(
            f"seed={seed}: {name} n={graph.n} m={graph.m} "
            f"merges<={merges}",
            file=sys.stderr,
        )

    for step in range(merges):
        pairs = _sample_pairs(partition, rng, count=12)
        if not pairs:
            break
        fast = partition.savings_many(pairs)
        slow = reference.savings_many(partition, pairs)
        for (u, v), got, want in zip(pairs, fast, slow):
            comparisons += 1
            if got != want:
                raise Mismatch(
                    f"seed={seed} step={step} gen={name}: "
                    f"savings_many({u}, {v}) = {got!r}, "
                    f"reference = {want!r}"
                )
        # Scalar path too (shares caches with the kernel).
        u, v = rng.choice(pairs)
        comparisons += 1
        if partition.saving(u, v) != reference.saving(partition, u, v):
            raise Mismatch(
                f"seed={seed} step={step} gen={name}: scalar saving"
                f"({u}, {v}) disagrees with reference"
            )

        # Merge a random sampled pair and re-validate the state.
        u, v = rng.choice(pairs)
        partition.merge(u, v)
        partition.check_invariants()
        if step % 5 == 0:
            comparisons += 1
            if partition.total_cost() != reference.total_cost(partition):
                raise Mismatch(
                    f"seed={seed} step={step} gen={name}: total_cost "
                    f"{partition.total_cost()} != reference "
                    f"{reference.total_cost(partition)}"
                )
    return comparisons


def run(seeds: int, start: int = 0, verbose: bool = False) -> int:
    """Fuzz ``seeds`` sequences; return total comparisons made."""
    if not supernodes.FAST_KERNELS:
        print(
            "warning: FAST_KERNELS is off; fuzzing scalar vs reference only",
            file=sys.stderr,
        )
    total = 0
    for seed in range(start, start + seeds):
        total += fuzz_one(seed, verbose=verbose)
    return total


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Differential fuzz of fast cost kernels vs the "
        "pure-Python reference oracle."
    )
    parser.add_argument(
        "--seeds", type=int, default=50, help="number of seeds (default 50)"
    )
    parser.add_argument(
        "--start", type=int, default=0, help="first seed (default 0)"
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    try:
        comparisons = run(args.seeds, start=args.start, verbose=args.verbose)
    except Mismatch as exc:
        print(f"MISMATCH: {exc}", file=sys.stderr)
        return 1
    print(
        f"diff_fuzz: {args.seeds} seeds, {comparisons} comparisons, "
        "0 mismatches"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
