"""End-to-end smoke test of ``python -m repro serve``.

What CI runs after the unit suite: summarize a graph, start the real
server process on an ephemeral port, fire a concurrent batch of
queries from 8 client threads (verifying every neighbor answer
against Algorithm 6), then send SIGINT and assert a clean, graceful
exit.  The whole run is bounded by a watchdog so a wedged server
fails the job instead of hanging it.

Run:  PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.algorithms.mags_dm import MagsDMSummarizer  # noqa: E402
from repro.core.serialization import save_representation  # noqa: E402
from repro.graph import generators  # noqa: E402
from repro.queries.neighbors import neighbor_query  # noqa: E402
from repro.service import SummaryServiceClient  # noqa: E402

CLIENT_THREADS = 8
STARTUP_TIMEOUT_S = 30
SHUTDOWN_TIMEOUT_S = 15


def main() -> int:
    graph = generators.planted_partition(300, 15, 0.6, 0.02, seed=5)
    rep = MagsDMSummarizer(iterations=8, seed=0).summarize(
        graph
    ).representation

    with tempfile.TemporaryDirectory() as tmp:
        summary_path = Path(tmp) / "summary.txt.gz"
        save_representation(summary_path, rep)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                str(summary_path), "--port", "0", "--log-interval", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO,
        )
        try:
            port = _wait_for_port(proc)
            print(f"server up on port {port}")
            _hammer(rep, port)
            print("concurrent queries verified, sending SIGINT")
            proc.send_signal(signal.SIGINT)
            output, _ = proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
        except BaseException:
            proc.kill()
            output, _ = proc.communicate()
            print(output)
            raise
    if proc.returncode != 0:
        print(output)
        raise SystemExit(
            f"server exited with code {proc.returncode} after SIGINT"
        )
    if "shutdown complete" not in output:
        print(output)
        raise SystemExit("server did not report a graceful shutdown")
    print("graceful shutdown confirmed")
    print("service smoke test PASSED")
    return 0


def _wait_for_port(proc: subprocess.Popen) -> int:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit("server exited before binding a port")
        match = re.match(r"serving on \S+:(\d+)", line)
        if match:
            return int(match.group(1))
    raise SystemExit("server did not report its port in time")


def _hammer(rep, port: int) -> None:
    failures: list[object] = []

    def worker(tid: int) -> None:
        try:
            with SummaryServiceClient("127.0.0.1", port) as client:
                assert client.ping() == "pong"
                for q in range(tid, rep.n, CLIENT_THREADS):
                    got = set(client.neighbors(q))
                    want = neighbor_query(rep, q)
                    if got != want:
                        failures.append(("mismatch", q))
                score = client.pagerank_score(tid)
                if not isinstance(score, float):
                    failures.append(("pagerank", tid))
                responses = client.batch([
                    {"id": i, "op": "degree", "node": (tid * 7 + i) % rep.n}
                    for i in range(32)
                ])
                if not all(r["ok"] for r in responses):
                    failures.append(("batch", tid))
        except Exception as exc:
            failures.append((tid, repr(exc)))

    threads = [
        threading.Thread(target=worker, args=(t,))
        for t in range(CLIENT_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise SystemExit(f"query failures: {failures[:5]}")

    with SummaryServiceClient("127.0.0.1", port) as client:
        stats = client.stats()
        expected = rep.n + 2 * CLIENT_THREADS  # neighbors + ping/pagerank
        if stats["requests_total"] < expected:
            raise SystemExit(
                f"stats undercount: {stats['requests_total']} < {expected}"
            )
        print(
            f"stats: {stats['requests_total']} requests, "
            f"hit rate {stats['cache']['hit_rate']:.0%}"
        )


if __name__ == "__main__":
    sys.exit(main())
