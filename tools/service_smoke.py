"""End-to-end smoke test of ``python -m repro serve`` (and, with
``--router``, of the sharded cluster).

What CI runs after the unit suite: summarize a graph, start the real
server process on an ephemeral port, fire a concurrent batch of
queries from 8 client threads (verifying every neighbor answer
against Algorithm 6), then send SIGINT and assert a clean, graceful
exit.  The whole run is bounded by a watchdog so a wedged server
fails the job instead of hanging it.

``--router`` runs the cluster chaos drill instead: plan the committed
2-shard/2-replica example topology (``examples/cluster_topology.json``)
against a generated graph, launch every instance as a real
``repro serve`` subprocess with the router in front, hammer the router
from concurrent clients while one replica is SIGKILLed mid-run, and
assert **zero** failed requests, breaker ejection + readmission after
the replica restarts, and a clean shutdown of every process.

With ``--trace-dir DIR`` the router drill additionally exercises the
observability stack end to end: every process exports spans into
``DIR``, a traced cross-shard ``khop`` is issued through the router,
the collector reassembles a single connected span tree from the
per-instance files (written to ``DIR/merged_trace.jsonl``), cluster
telemetry is pulled from every process (``DIR/cluster_telemetry.json``)
and the default availability/latency SLOs must pass.

Run:  PYTHONPATH=src python tools/service_smoke.py [--router] [--trace-dir DIR]
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.algorithms.mags_dm import MagsDMSummarizer  # noqa: E402
from repro.core.serialization import save_representation  # noqa: E402
from repro.graph import generators  # noqa: E402
from repro.queries.neighbors import neighbor_query  # noqa: E402
from repro.service import SummaryServiceClient  # noqa: E402

CLIENT_THREADS = 8
STARTUP_TIMEOUT_S = 30
SHUTDOWN_TIMEOUT_S = 15

EXAMPLE_TOPOLOGY = REPO / "examples" / "cluster_topology.json"
CHAOS_VICTIM = "shard0/r1"


def main() -> int:
    graph = generators.planted_partition(300, 15, 0.6, 0.02, seed=5)
    rep = MagsDMSummarizer(iterations=8, seed=0).summarize(
        graph
    ).representation

    with tempfile.TemporaryDirectory() as tmp:
        summary_path = Path(tmp) / "summary.txt.gz"
        save_representation(summary_path, rep)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                str(summary_path), "--port", "0", "--log-interval", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO,
        )
        try:
            port = _wait_for_port(proc)
            print(f"server up on port {port}")
            _hammer(rep, port)
            print("concurrent queries verified, sending SIGINT")
            proc.send_signal(signal.SIGINT)
            output, _ = proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
        except BaseException:
            proc.kill()
            output, _ = proc.communicate()
            print(output)
            raise
    if proc.returncode != 0:
        print(output)
        raise SystemExit(
            f"server exited with code {proc.returncode} after SIGINT"
        )
    if "shutdown complete" not in output:
        print(output)
        raise SystemExit("server did not report a graceful shutdown")
    print("graceful shutdown confirmed")
    print("service smoke test PASSED")
    return 0


def _wait_for_port(proc: subprocess.Popen) -> int:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit("server exited before binding a port")
        match = re.match(r"serving on \S+:(\d+)", line)
        if match:
            return int(match.group(1))
    raise SystemExit("server did not report its port in time")


def _hammer(rep, port: int) -> None:
    failures: list[object] = []

    def worker(tid: int) -> None:
        try:
            with SummaryServiceClient("127.0.0.1", port) as client:
                assert client.ping() == "pong"
                for q in range(tid, rep.n, CLIENT_THREADS):
                    got = set(client.neighbors(q))
                    want = neighbor_query(rep, q)
                    if got != want:
                        failures.append(("mismatch", q))
                score = client.pagerank_score(tid)
                if not isinstance(score, float):
                    failures.append(("pagerank", tid))
                responses = client.batch([
                    {"id": i, "op": "degree", "node": (tid * 7 + i) % rep.n}
                    for i in range(32)
                ])
                if not all(r["ok"] for r in responses):
                    failures.append(("batch", tid))
        except Exception as exc:
            failures.append((tid, repr(exc)))

    threads = [
        threading.Thread(target=worker, args=(t,))
        for t in range(CLIENT_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise SystemExit(f"query failures: {failures[:5]}")

    with SummaryServiceClient("127.0.0.1", port) as client:
        stats = client.stats()
        expected = rep.n + 2 * CLIENT_THREADS  # neighbors + ping/pagerank
        if stats["requests_total"] < expected:
            raise SystemExit(
                f"stats undercount: {stats['requests_total']} < {expected}"
            )
        print(
            f"stats: {stats['requests_total']} requests, "
            f"hit rate {stats['cache']['hit_rate']:.0%}"
        )


def _free_ports(count: int) -> list[int]:
    sockets, ports = [], []
    for _ in range(count):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
        ports.append(sock.getsockname()[1])
    for sock in sockets:
        sock.close()
    return ports


def router_main(trace_dir: str | None = None) -> int:
    """The cluster chaos drill (see module docstring)."""
    from repro.cluster import (
        ClusterManager,
        InstanceSpec,
        load_topology,
        plan_cluster,
    )

    spec = load_topology(EXAMPLE_TOPOLOGY)
    print(
        f"loaded {EXAMPLE_TOPOLOGY.name}: {spec.shards} shard(s) x "
        f"{spec.replicas} replica(s)"
    )
    # Committed ports are a convention; remap to free ones so the
    # drill cannot collide with anything already on the box.
    ports = _free_ports(len(spec.instances) + 1)
    spec.router_port = ports[0]
    spec.instances = [
        InstanceSpec(i.shard, i.replica, i.host, port)
        for i, port in zip(spec.instances, ports[1:])
    ]

    graph = generators.planted_partition(300, 15, 0.6, 0.02, seed=5)
    full = MagsDMSummarizer(iterations=8, seed=0).summarize(
        graph
    ).representation

    with tempfile.TemporaryDirectory() as tmp:
        plan_cluster(
            graph,
            spec,
            tmp,
            lambda: MagsDMSummarizer(iterations=8, seed=0),
        )
        print(f"planned {spec.shards} shard artifact(s)")
        manager = ClusterManager(spec, workers=4, trace_dir=trace_dir)
        try:
            manager.start()
            host, port = manager.router_server.address
            print(f"router up on {host}:{port}")
            if trace_dir is not None:
                # Before the hammer warms the router's neighbor cache:
                # a cold khop is guaranteed to fan out to the shards.
                _traced_drill(port, Path(trace_dir))
            _chaos_hammer(manager, full, port)
            _verify_readmission(manager, port)
            if trace_dir is not None:
                _slo_gate(manager, Path(trace_dir))
        finally:
            codes = manager.stop()
        bad = {label: c for label, c in codes.items() if c != 0}
        if bad:
            raise SystemExit(f"instances exited uncleanly: {bad}")
    print("all instances shut down cleanly")
    print("cluster smoke test PASSED")
    return 0


def _chaos_hammer(manager, rep, port: int) -> None:
    """Concurrent clients vs. a replica SIGKILL: zero failures
    allowed."""
    failures: list[object] = []

    def worker(tid: int) -> None:
        try:
            with SummaryServiceClient("127.0.0.1", port) as client:
                for sweep in range(3):
                    for q in range(tid, rep.n, CLIENT_THREADS):
                        got = set(client.neighbors(q))
                        want = neighbor_query(rep, q)
                        if got != want:
                            failures.append(("mismatch", q))
                    responses = client.batch([
                        {
                            "id": i,
                            "op": "degree",
                            "node": (tid * 13 + i) % rep.n,
                        }
                        for i in range(64)
                    ])
                    if not all(r["ok"] for r in responses):
                        failures.append(("batch", tid, sweep))
        except Exception as exc:
            failures.append((tid, repr(exc)))

    threads = [
        threading.Thread(target=worker, args=(t,))
        for t in range(CLIENT_THREADS)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.3)  # let traffic build before pulling the plug
    manager.processes[CHAOS_VICTIM].kill()
    print(f"killed replica {CHAOS_VICTIM} mid-run")
    for thread in threads:
        thread.join()
    if failures:
        raise SystemExit(
            f"{len(failures)} request(s) failed during chaos: "
            f"{failures[:5]}"
        )
    print("zero failed requests during replica loss")


def _verify_readmission(manager, port: int) -> None:
    """The dead replica must show as ejected, then rejoin after a
    restart once the breaker's reset window elapses."""
    def breaker_state() -> str:
        with SummaryServiceClient("127.0.0.1", port) as client:
            stats = client.stats()
        for shard in stats["cluster"]["shards"]:
            for inst in shard["instances"]:
                if inst["instance"] == CHAOS_VICTIM:
                    return inst["breaker"]
        raise SystemExit(f"{CHAOS_VICTIM} missing from router stats")

    state = breaker_state()
    if state == "closed":
        raise SystemExit(
            f"breaker for killed replica {CHAOS_VICTIM} never opened"
        )
    print(f"breaker for {CHAOS_VICTIM}: {state} (ejected)")

    manager.processes[CHAOS_VICTIM].start()
    print(f"restarted {CHAOS_VICTIM}")
    reset_s = manager.spec.breaker_reset_s
    deadline = time.monotonic() + reset_s + 20
    while time.monotonic() < deadline:
        time.sleep(max(0.2, reset_s / 2))
        # Batched degrees are forwarded to the shards (never served
        # from the router cache), so the half-open probe gets traffic.
        with SummaryServiceClient("127.0.0.1", port) as client:
            client.batch([
                {"id": i, "op": "degree", "node": i} for i in range(256)
            ])
        if breaker_state() == "closed":
            print(f"{CHAOS_VICTIM} readmitted (breaker closed)")
            return
    raise SystemExit(
        f"{CHAOS_VICTIM} was not readmitted within {reset_s + 20:.0f}s"
    )


def _traced_drill(port: int, trace_dir: Path) -> None:
    """One traced cross-shard khop through the router, then the
    collector pass: reassemble a single connected span tree from the
    per-instance files and write it to ``merged_trace.jsonl``."""
    from repro.obs import collect, schema
    from repro.obs.context import new_trace_id
    from repro.obs.exporters import write_trace_jsonl

    trace_id = new_trace_id()
    with SummaryServiceClient("127.0.0.1", port) as client:
        result = client.request(
            "khop", node=0, k=2, trace={"id": trace_id}
        )
    if not result:
        raise SystemExit("traced khop returned no nodes")

    records = collect.read_trace_dir(trace_dir)
    merged = collect.assemble_trace(records, trace_id)
    if len(merged.roots) != 1:
        raise SystemExit(
            f"expected a single root span, got {len(merged.roots)}"
        )
    shard_instances = set(merged.instances) - {"router"}
    if len(shard_instances) < 2:
        raise SystemExit(
            f"trace did not span multiple shards: "
            f"{sorted(merged.instances)}"
        )
    errors = schema.validate_trace(merged.records)
    if errors:
        raise SystemExit(f"merged trace schema errors: {errors[:3]}")
    write_trace_jsonl(merged.records, trace_dir / "merged_trace.jsonl")
    print(
        f"traced khop: {len(merged.records)} span(s) across "
        f"{sorted(merged.instances)}, fan-out width {merged.fanout_width}"
    )


def _slo_gate(manager, trace_dir: Path) -> None:
    """Pull telemetry from every process after the chaos run and gate
    on the default availability/latency SLOs — a replica loss with
    zero failed requests must still leave the error budget intact."""
    from repro.obs import collect
    from repro.obs.slo import DEFAULT_SLOS, evaluate_slos, format_slo_report

    telemetry = collect.pull_cluster_telemetry(manager.spec)
    snapshots = collect.registry_snapshots(telemetry)
    if len(snapshots) < len(manager.spec.instances) + 1:
        missing = set(telemetry) - set(snapshots)
        raise SystemExit(
            f"telemetry pull missed instance(s): {sorted(missing)}"
        )
    collect.write_cluster_telemetry(
        telemetry, trace_dir / "cluster_telemetry.json"
    )
    results = evaluate_slos(snapshots, DEFAULT_SLOS)
    print(format_slo_report(results))
    violated = [r.slo.name for r in results if not r.ok]
    if violated:
        raise SystemExit(f"SLO violation(s) in smoke run: {violated}")
    print("SLO gate passed")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--router", action="store_true",
        help="run the sharded-cluster chaos drill instead",
    )
    parser.add_argument(
        "--trace-dir", default=None,
        help=(
            "with --router: export spans here and run the traced "
            "collector + SLO drill"
        ),
    )
    cli = parser.parse_args()
    if cli.trace_dir and not cli.router:
        parser.error("--trace-dir requires --router")
    if cli.router:
        sys.exit(router_main(cli.trace_dir))
    sys.exit(main())
