"""Performance regression gate for the core microbenchmarks.

Runs ``benchmarks/bench_micro_core.py`` under pytest-benchmark and
compares the results against the committed baseline
``bench_results/micro_core_baseline.json``.  Raw wall-times are not
comparable across machines, so two machine-independent checks are
applied instead:

1. **Calibration-normalized regression.**  A fixed, deterministic
   CPU workload (Python dict churn + NumPy reductions, mirroring the
   mix the benches exercise) is timed on the current machine; every
   bench time is divided by that calibration time before comparing to
   the baseline's equally-normalized score.  A bench fails if its
   normalized score regresses by more than ``--threshold`` (default
   25%).
2. **Kernel speedup ratio.**  The scalar-vs-batched saving benches
   time the *same* pair list, so their ratio is a pure same-machine
   speedup.  The gate fails if it drops below ``--min-speedup``.

Usage::

    PYTHONPATH=src python tools/perf_gate.py \\
        --baseline bench_results/micro_core_baseline.json
    PYTHONPATH=src python tools/perf_gate.py --update-baseline

Exit status 0 when every check passes; 1 on any regression.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "bench_results" / "micro_core_baseline.json"
BENCH_FILE = REPO / "benchmarks" / "bench_micro_core.py"

#: The bench pair whose time ratio is the kernel speedup.
BATCHED_BENCH = "test_micro_saving_pairs_batched"
SCALAR_BENCH = "test_micro_saving_pairs_scalar"


def calibrate(repeats: int = 5) -> float:
    """Best-of-``repeats`` time of a fixed mixed CPU workload.

    Deterministic by construction (no RNG, fixed sizes) and shaped
    like the benches themselves: interpreter-bound dict/loop work plus
    NumPy elementwise-and-reduce work, so machines are ranked the way
    the benches rank them.
    """
    import numpy as np

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        table: dict[int, int] = {}
        acc = 0
        for i in range(150_000):
            key = (i * 2654435761) & 1023
            table[key] = table.get(key, 0) + i
        acc += sum(table.values())
        arr = np.arange(250_000, dtype=np.int64)
        for _ in range(12):
            acc += int(np.minimum(arr % 97, arr % 89).sum())
        best = min(best, time.perf_counter() - start)
    if acc <= 0:  # keep the work observable
        raise RuntimeError("calibration workload underflowed")
    return best


def run_benchmarks(json_path: Path) -> dict[str, float]:
    """Run the micro benches, return {bench name: seconds}."""
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "--benchmark-only",
        "--benchmark-json",
        str(json_path),
        "-q",
        "-p",
        "no:cacheprovider",
    ]
    result = subprocess.run(cmd, cwd=REPO, env=env)
    if result.returncode != 0:
        raise RuntimeError(f"benchmark run failed (exit {result.returncode})")
    return parse_benchmark_json(json_path)


def parse_benchmark_json(json_path: Path) -> dict[str, float]:
    """Extract {bench name: best-round seconds} from pytest-benchmark JSON.

    The *min* over rounds, not the mean: the minimum is the standard
    low-noise estimator for microbenchmarks (every slower round is,
    by construction, the same work plus interference).
    """
    with open(json_path) as handle:
        data = json.load(handle)
    times: dict[str, float] = {}
    for bench in data["benchmarks"]:
        times[bench["name"]] = float(bench["stats"]["min"])
    return times


def evaluate(
    means: dict[str, float],
    calibration: float,
    baseline: dict,
    threshold: float = 0.25,
    min_speedup: float = 1.5,
) -> tuple[list[str], list[str]]:
    """Pure comparison logic; returns ``(failures, report_lines)``.

    ``baseline`` is the parsed baseline file: ``calibration_s`` plus a
    ``benchmarks`` mapping of name -> {"time_s": float}.  Benches
    present on only one side are reported but never fail the gate, so
    adding a bench doesn't require regenerating the baseline on the
    same machine that made it.
    """
    failures: list[str] = []
    lines = [
        f"{'benchmark':<36} {'base_norm':>10} {'now_norm':>10} {'ratio':>7}"
    ]
    base_cal = float(baseline["calibration_s"])
    base_means = baseline["benchmarks"]
    for name in sorted(set(means) | set(base_means)):
        if name not in means:
            lines.append(f"{name:<36} {'(baseline only)':>29}")
            continue
        if name not in base_means:
            lines.append(f"{name:<36} {'(new bench)':>29}")
            continue
        base_norm = float(base_means[name]["time_s"]) / base_cal
        now_norm = means[name] / calibration
        ratio = now_norm / base_norm
        flag = ""
        if ratio > 1.0 + threshold:
            flag = "  <-- REGRESSION"
            failures.append(
                f"{name}: normalized score {ratio:.2f}x baseline "
                f"(limit {1.0 + threshold:.2f}x)"
            )
        lines.append(
            f"{name:<36} {base_norm:>10.4g} {now_norm:>10.4g} "
            f"{ratio:>7.3f}{flag}"
        )

    if BATCHED_BENCH in means and SCALAR_BENCH in means:
        speedup = means[SCALAR_BENCH] / means[BATCHED_BENCH]
        lines.append(
            f"kernel speedup (scalar/batched): {speedup:.2f}x "
            f"(floor {min_speedup:.2f}x)"
        )
        if speedup < min_speedup:
            failures.append(
                f"batched kernel speedup {speedup:.2f}x is below the "
                f"{min_speedup:.2f}x floor"
            )
    else:
        failures.append(
            "speedup benches missing from the run: "
            f"{SCALAR_BENCH}, {BATCHED_BENCH}"
        )
    return failures, lines


def write_baseline(
    path: Path, means: dict[str, float], calibration: float
) -> None:
    payload = {
        "calibration_s": calibration,
        "benchmarks": {
            name: {"time_s": mean} for name, mean in sorted(means.items())
        },
        "meta": {
            "bench_file": BENCH_FILE.name,
            "python": sys.version.split()[0],
            "note": (
                "Scores are compared after dividing by calibration_s; "
                "regenerate with tools/perf_gate.py --update-baseline."
            ),
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate core microbenchmark performance against the "
        "committed baseline."
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"baseline JSON (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="max tolerated normalized regression (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.5,
        help="minimum scalar/batched kernel speedup (default 1.5)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-measure and overwrite the baseline instead of gating",
    )
    args = parser.parse_args(argv)

    # Calibrate on both sides of the bench run and keep the slower
    # measurement: a machine that throttles under the sustained bench
    # load runs the benches at the *throttled* speed, and a cold
    # calibration alone would make every bench look uniformly slower.
    calibration_before = calibrate()
    with tempfile.TemporaryDirectory() as tmp:
        means = run_benchmarks(Path(tmp) / "bench.json")
    calibration = max(calibration_before, calibrate())
    print(
        f"calibration: {calibration * 1000:.1f} ms "
        f"(cold {calibration_before * 1000:.1f} ms)"
    )

    if args.update_baseline:
        write_baseline(args.baseline, means, calibration)
        print(f"baseline written: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run --update-baseline first")
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    failures, lines = evaluate(
        means,
        calibration,
        baseline,
        threshold=args.threshold,
        min_speedup=args.min_speedup,
    )
    print("\n".join(lines))
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
