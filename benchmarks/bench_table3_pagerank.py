"""Table 3: PageRank on the input graph vs on the summary.

Expected shape (paper): the summary side wins on the highly
compressible graphs (relative size well below ~0.5) and loses on the
rest due to constant-factor overheads; averages are comparable.
"""

from repro.bench import experiments

from _util import run_and_report


def test_table3_pagerank(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.table3_pagerank,
        "table3_pagerank",
    )
    compressible = [r for r in rows if r["relative_size"] < 0.3]
    if compressible:
        wins = sum(
            r["summary_s"] < r["input_graph_s"] for r in compressible
        )
        assert wins >= len(compressible) * 0.5
