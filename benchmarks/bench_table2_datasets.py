"""Table 2: dataset statistics (paper originals vs synthetic analogs)."""

from repro.bench import experiments

from _util import run_and_report


def test_table2_dataset_statistics(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.table2_dataset_statistics,
        "table2_datasets",
    )
    assert len(rows) == 18
