"""Figure 16: compactness vs the candidate budget k (Mags only).

Expected shape (paper): limited impact across k in {10..50} — the
candidate pool saturates once enough promising pairs are retained.
"""

from repro.bench import experiments

from _util import run_and_report


def test_fig16_compactness_vs_k(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig16_k_sweep,
        "fig16_compactness_vs_k",
        columns=["dataset", "algorithm", "k", "relative_size"],
        chart_value="relative_size",
        series_x="k",
    )
    series = {}
    for r in rows:
        series.setdefault(r["dataset"], []).append(r["relative_size"])
    for values in series.values():
        assert max(values) - min(values) < 0.06
