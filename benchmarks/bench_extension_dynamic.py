"""Extension bench (§8 future work): dynamic update throughput and the
drift/rebuild trade-off.

Expected shape: updates are cheap and constant-time-ish; without
rebuilds the representation cost drifts upward under structured
insertions; automatic rebuilds bound the drift.
"""

import random
import time

from repro.algorithms import MagsDMSummarizer
from repro.bench import format_table, save_report
from repro.bench.runner import bench_iterations, get_graph
from repro.dynamic import DynamicGraphSummary


def test_dynamic_stream(benchmark):
    T = bench_iterations()
    code = "EN"

    def run():
        rows = []
        for label, factor in (("no rebuilds", None), ("rebuild@1.2x", 1.2)):
            graph = get_graph(code)
            dyn = DynamicGraphSummary(
                graph,
                summarizer_factory=lambda: MagsDMSummarizer(
                    iterations=T, seed=0
                ),
                rebuild_factor=factor,
            )
            rng = random.Random(3)
            start_cost = dyn.cost
            start = time.perf_counter()
            updates = 0
            while updates < 2_000:
                u = rng.randrange(dyn.n)
                v = rng.randrange(dyn.n)
                if u == v:
                    continue
                if dyn.has_edge(u, v):
                    dyn.delete_edge(u, v)
                else:
                    dyn.insert_edge(u, v)
                updates += 1
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "mode": label,
                    "updates": updates,
                    "updates_per_s": updates / elapsed,
                    "cost_before": start_cost,
                    "cost_after": dyn.cost,
                    "rebuilds": dyn.num_rebuilds,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        rows, title="Extension: dynamic updates and rebuild policy"
    )
    print("\n" + report)
    save_report(report, "extension_dynamic")
    no_rebuild, with_rebuild = rows
    assert no_rebuild["rebuilds"] == 0
    assert with_rebuild["cost_after"] <= no_rebuild["cost_after"] * 1.4
