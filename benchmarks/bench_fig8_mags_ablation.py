"""Figure 8: Mags vs Mags (naive CG) vs Greedy.

Expected shape (paper): compactness within 0.5% across the three; the
MinHash candidate generation is several times faster than the naive
exhaustive generation (Figure 8d).
"""

from repro.bench import experiments

from _util import run_and_report


def test_fig8_mags_ablation(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig8_mags_ablation,
        "fig8_mags_ablation",
        columns=["dataset", "algorithm", "relative_size", "time_s", "cg_time_s"],
    )
    by_cell = {(r["dataset"], r["algorithm"]): r for r in rows}
    datasets = {r["dataset"] for r in rows}
    for code in datasets:
        fast = by_cell[(code, "Mags")]
        naive = by_cell[(code, "Mags (naive CG)")]
        # Compactness of the two CG variants is nearly identical.
        assert abs(fast["relative_size"] - naive["relative_size"]) < 0.05
