"""Figure 14: compactness vs the sampling width b.

Expected shape (paper): b has a limited impact (< 0.5% average
difference across the sweep).
"""

from repro.bench import experiments

from _util import run_and_report


def test_fig14_compactness_vs_b(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig14_b_sweep,
        "fig14_compactness_vs_b",
        columns=["dataset", "algorithm", "b", "relative_size"],
        chart_value="relative_size",
        series_x="b",
    )
    series = {}
    for r in rows:
        series.setdefault((r["dataset"], r["algorithm"]), []).append(
            r["relative_size"]
        )
    for values in series.values():
        assert max(values) - min(values) < 0.05
