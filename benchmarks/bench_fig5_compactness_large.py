"""Figure 5: summary compactness on large graphs (no Greedy).

Expected shape (paper): Mags leads, Mags-DM within ~2.8%; LDME trails;
Slugger is skipped on UK/IT (exceeds the time budget, as in the paper).
"""

from repro.bench import experiments

from _util import run_and_report


def test_fig5_compactness_large(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig5_fig7_large_graphs,
        "fig5_compactness_large",
        columns=["dataset", "algorithm", "relative_size", "note"],
        chart_value="relative_size",
    )
    by_cell = {(r["dataset"], r["algorithm"]): r["relative_size"] for r in rows}
    datasets = {r["dataset"] for r in rows}
    wins = sum(
        by_cell[(code, "Mags")] <= by_cell[(code, "LDME")] + 1e-9
        for code in datasets
    )
    assert wins >= len(datasets) - 1  # Mags beats LDME (HO-style outliers allowed)
