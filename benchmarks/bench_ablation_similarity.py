"""Ablation (beyond the paper's figures): mh(.) vs Super-Jaccard inside
Mags-DM, isolating Merging Strategy 2.

Expected shape: mh(.) is faster to evaluate (vectorised signature
agreement vs per-pair weighted unions) at equal-or-better compactness
(the paper reports +2.8% compactness and 11.4x efficiency).
"""

from repro.algorithms import MagsDMSummarizer
from repro.bench import format_table, save_report
from repro.bench.runner import bench_iterations, run_on_dataset
from repro.bench.experiments import small_codes


def test_ablation_similarity(benchmark):
    T = bench_iterations()

    def run():
        rows = []
        for code in small_codes():
            for similarity in ("minhash", "super_jaccard"):
                result = run_on_dataset(
                    code,
                    lambda: MagsDMSummarizer(
                        iterations=T, similarity=similarity
                    ),
                )
                rows.append(
                    {
                        "dataset": code,
                        "similarity": similarity,
                        "relative_size": result.relative_size,
                        "time_s": result.runtime_seconds,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        rows, title="Ablation: mh(.) vs Super-Jaccard in Mags-DM"
    )
    print("\n" + report)
    save_report(report, "ablation_similarity")
    total = {}
    for r in rows:
        total[r["similarity"]] = total.get(r["similarity"], 0.0) + r["time_s"]
    assert total["minhash"] < total["super_jaccard"] * 1.5
