"""Section 7 pipeline: summarize-then-compress vs compress-alone.

The paper: "we can feed the output of our Mags or Mags-DM to another
graph compression method, and compress it further."  This bench runs
a gap+varint adjacency codec on the plain graph and on the Mags-DM
summary of it, per dataset.

Expected shape: the summarized pipeline wins in proportion to the
summary's relative size — dramatically on the web analogs, marginally
or not at all on the incompressible social analogs.
"""

from repro.algorithms import MagsDMSummarizer
from repro.bench import format_table, save_report
from repro.bench.runner import bench_iterations, get_graph, run_on_dataset
from repro.bench.experiments import large_codes, small_codes
from repro.compression.codec import compression_report


def test_compression_pipeline(benchmark):
    T = bench_iterations()

    def run():
        rows = []
        for code in small_codes() + large_codes():
            graph = get_graph(code)
            result = run_on_dataset(
                code, lambda: MagsDMSummarizer(iterations=T)
            )
            report = compression_report(graph, result.representation)
            rows.append(
                {
                    "dataset": code,
                    "graph_bits_per_edge": report.graph_bits_per_edge,
                    "summary_bits_per_edge": report.summary_bits_per_edge,
                    "ratio": report.ratio,
                    "relative_size": result.relative_size,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_text = format_table(
        rows, title="Section 7: compress-alone vs summarize-then-compress"
    )
    print("\n" + report_text)
    save_report(report_text, "compression_pipeline")
    web = [r for r in rows if r["relative_size"] < 0.3]
    assert web, "expected at least one highly compressible dataset"
    assert all(r["ratio"] < 0.8 for r in web)
