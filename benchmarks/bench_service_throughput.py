"""Load test of the summary-serving query engine.

Closed-loop multi-threaded clients against a live
:class:`repro.service.server.SummaryQueryServer`:

* ``cold``       — first pass, every neighborhood expansion an LRU miss;
* ``warm``       — same nodes again, served from cache;
* ``warm-batch`` — warm cache, 64 queries per request (amortised
  framing + server-side dedup).

Expected shape: warm throughput strictly above cold (that is the
cache paying for itself), batch above single-request warm.
"""

from _util import run_and_report

from repro.bench import experiments


def test_service_throughput(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.service_throughput,
        "service_throughput",
        columns=[
            "phase", "threads", "queries", "qps",
            "p50_ms", "p95_ms", "p99_ms", "hit_rate",
        ],
    )
    by_phase = {r["phase"]: r for r in rows}
    assert set(by_phase) == {"cold", "warm", "warm-batch"}
    # The acceptance bar: a warm cache must serve strictly more
    # queries per second than a cold one.
    assert by_phase["warm"]["qps"] > by_phase["cold"]["qps"]
    assert by_phase["cold"]["hit_rate"] == 0.0
    assert by_phase["warm"]["hit_rate"] == 1.0
    for row in rows:
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
