"""Load test of the summary-serving query engine.

Closed-loop multi-threaded clients against a live
:class:`repro.service.server.SummaryQueryServer`:

* ``cold``       — first pass, every neighborhood expansion an LRU miss;
* ``warm``       — same nodes again, served from cache;
* ``warm-batch`` — warm cache, 64 queries per request (amortised
  framing + server-side dedup).

Expected shape: warm throughput strictly above cold (that is the
cache paying for itself), batch above single-request warm.
"""

from _util import run_and_report

from repro.bench import experiments


def test_service_throughput(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.service_throughput,
        "service_throughput",
        columns=[
            "phase", "threads", "queries", "qps",
            "p50_ms", "p95_ms", "p99_ms", "hit_rate",
        ],
    )
    by_phase = {r["phase"]: r for r in rows}
    assert set(by_phase) == {"cold", "warm", "warm-batch"}
    # The acceptance bar: a warm cache must serve strictly more
    # queries per second than a cold one.
    assert by_phase["warm"]["qps"] > by_phase["cold"]["qps"]
    assert by_phase["cold"]["hit_rate"] == 0.0
    assert by_phase["warm"]["hit_rate"] == 1.0
    for row in rows:
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]


def test_cluster_throughput(benchmark):
    """1 -> 2 -> 4 shards behind the router, identical wire path.

    The acceptance bars: aggregate throughput must scale >= 1.7x at 2
    shards and >= 3x at 4 shards over the single-shard baseline, at a
    p99 no worse than the baseline's (the speedup must not be bought
    with a latency regression).
    """
    from repro.bench.runner import quick_mode

    rows = run_and_report(
        benchmark,
        experiments.cluster_throughput,
        "cluster_throughput",
        columns=[
            "config", "scope", "queries", "qps",
            "p50_ms", "p95_ms", "p99_ms", "hit_rate", "speedup",
        ],
    )
    agg = {r["config"]: r for r in rows if r["scope"] == "aggregate"}
    assert set(agg) == {"1-shard", "2-shard", "4-shard"}
    baseline = agg["1-shard"]
    # Per-shard rows exist for every instance of every configuration.
    assert sum(r["scope"] != "aggregate" for r in rows) == 1 + 2 + 4
    for row in agg.values():
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
    # More shards -> more aggregate cache -> higher hit rate.
    assert agg["4-shard"]["hit_rate"] > agg["1-shard"]["hit_rate"]
    if quick_mode():
        # Reduced n: still must scale, but without the full-run bars.
        assert agg["2-shard"]["qps"] > baseline["qps"]
        assert agg["4-shard"]["qps"] > baseline["qps"]
        return
    assert agg["2-shard"]["qps"] >= 1.7 * baseline["qps"]
    assert agg["4-shard"]["qps"] >= 3.0 * baseline["qps"]
    assert agg["2-shard"]["p99_ms"] <= baseline["p99_ms"]
    assert agg["4-shard"]["p99_ms"] <= baseline["p99_ms"]
