"""Extension bench (§8 future work): lossy compactness vs epsilon.

Expected shape: representation cost decreases monotonically with the
error budget, with the biggest wins on correction-heavy summaries;
every point respects the per-node error bound (asserted).
"""

from repro.algorithms import MagsDMSummarizer
from repro.bench import format_table, save_report
from repro.bench.runner import bench_iterations, get_graph, run_on_dataset
from repro.core.lossy import make_lossy, neighborhood_errors


def test_lossy_epsilon_curve(benchmark):
    T = bench_iterations()
    codes = ["EN", "YT"]
    epsilons = [0.0, 0.05, 0.1, 0.2, 0.4]

    def run():
        rows = []
        for code in codes:
            graph = get_graph(code)
            result = run_on_dataset(
                code, lambda: MagsDMSummarizer(iterations=T)
            )
            for epsilon in epsilons:
                lossy = make_lossy(result.representation, epsilon)
                errors = neighborhood_errors(graph, lossy.representation)
                worst = max(
                    (err / graph.degree(v) if graph.degree(v) else 0.0)
                    for v, err in enumerate(errors)
                )
                rows.append(
                    {
                        "dataset": code,
                        "epsilon": epsilon,
                        "relative_size": lossy.relative_size,
                        "dropped": lossy.corrections_dropped,
                        "worst_node_error": worst,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(rows, title="Extension: lossy size vs epsilon")
    print("\n" + report)
    save_report(report, "extension_lossy")
    for code in codes:
        series = [r for r in rows if r["dataset"] == code]
        sizes = [r["relative_size"] for r in series]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        for r in series:
            assert r["worst_node_error"] <= r["epsilon"] + 1e-9
