"""Section 6.6: neighbor-query cost on the summary.

Expected shape (paper): expected per-query work is ~1.12 * d_avg.
"""

from repro.bench import experiments

from _util import run_and_report


def test_neighbor_query_cost(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.neighbor_query_cost,
        "neighbor_query_cost",
    )
    assert all(r["ratio"] < 2.0 for r in rows)
