"""Figure 13: parallel speedup vs thread count (work-partition model).

Expected shape (paper): Mags-DM scales well (~12x at 40 cores there);
Mags is limited by merge data races (~3.4x there).  See DESIGN.md for
the substitution rationale (CPython threads cannot show CPU speedup).
"""

from repro.bench import experiments

from _util import run_and_report


def test_fig13_parallel_speedup(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig13_parallel_speedup,
        "fig13_parallel_speedup",
    )
    at_40 = {}
    for r in rows:
        if r["p"] == 40:
            at_40.setdefault(r["algorithm"], []).append(r["speedup"])
    # Mags-DM out-scales Mags on average.
    avg = {a: sum(v) / len(v) for a, v in at_40.items()}
    assert avg["Mags-DM"] > avg["Mags"]
