"""Figure 15: compactness vs the number of hash functions h.

Expected shape (paper): limited impact across h in {10..50}.
"""

from repro.bench import experiments

from _util import run_and_report


def test_fig15_compactness_vs_h(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig15_h_sweep,
        "fig15_compactness_vs_h",
        columns=["dataset", "algorithm", "h", "relative_size"],
        chart_value="relative_size",
        series_x="h",
    )
    series = {}
    for r in rows:
        series.setdefault((r["dataset"], r["algorithm"]), []).append(
            r["relative_size"]
        )
    for values in series.values():
        assert max(values) - min(values) < 0.05
