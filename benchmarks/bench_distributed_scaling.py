"""Extension bench: distributed summarization quality/communication vs
worker count (the distributed setting the paper's Section 7 points at
via Liu et al. [27] and SWeG's distributed extension [34]).

Expected shape: compactness degrades smoothly as the graph is split
across more workers (cut edges cannot be merged locally), boundary
refinement claws part of it back, and communication grows with the
cut.
"""

from repro.algorithms import MagsDMSummarizer
from repro.bench import format_table, save_report
from repro.bench.runner import bench_iterations, get_graph, run_on_dataset
from repro.core.verify import verify_lossless
from repro.distributed import DistributedSummarizer


def test_distributed_scaling(benchmark):
    T = bench_iterations()
    codes = ["CN", "EU"]

    def run():
        rows = []
        for code in codes:
            graph = get_graph(code)
            central = run_on_dataset(
                code, lambda: MagsDMSummarizer(iterations=T)
            )
            rows.append(
                {
                    "dataset": code,
                    "workers": 1,
                    "relative_size": central.relative_size,
                    "cut_edges": 0,
                    "comm_bytes": 0,
                    "mode": "central",
                }
            )
            for workers in (2, 4, 8):
                result = DistributedSummarizer(
                    workers=workers,
                    summarizer_factory=lambda: MagsDMSummarizer(
                        iterations=T, seed=0
                    ),
                    seed=0,
                ).summarize(graph)
                verify_lossless(graph, result.representation)
                rows.append(
                    {
                        "dataset": code,
                        "workers": workers,
                        "relative_size": result.relative_size,
                        "cut_edges": result.cut_edge_count,
                        "comm_bytes": result.total_communication_bytes,
                        "mode": "distributed",
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        rows, title="Extension: distributed summarization scaling"
    )
    print("\n" + report)
    save_report(report, "distributed_scaling")
    for code in codes:
        series = [
            r["relative_size"] for r in rows if r["dataset"] == code
        ]
        # Quality degrades but stays bounded: worst distributed result
        # within 3x of central and still compressing.
        assert max(series) < min(3 * series[0], 1.0)
