"""Figure 11: compactness vs iteration count T.

Expected shape (paper): compactness converges quickly (by T~20) and
improves only slightly with larger T.
"""

from repro.bench import experiments

from _util import run_and_report


def test_fig11_compactness_vs_T(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig11_fig12_iterations_sweep,
        "fig11_compactness_vs_T",
        columns=["dataset", "algorithm", "T", "relative_size"],
        chart_value="relative_size",
        series_x="T",
    )
    # Largest T is never much worse than smallest T.
    series = {}
    for r in rows:
        series.setdefault((r["dataset"], r["algorithm"]), []).append(
            (r["T"], r["relative_size"])
        )
    for points in series.values():
        points.sort()
        assert points[-1][1] <= points[0][1] + 0.02
