"""Figure 9: Mags-DM strategy ablation — compactness.

Expected shape (paper): full Mags-DM is the most compact of the four;
removing the merging strategies (no MS) hurts most; SWeG is worst.
"""

from repro.bench import experiments

from _util import run_and_report


def test_fig9_magsdm_ablation_compactness(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig9_fig10_magsdm_ablation,
        "fig9_magsdm_ablation",
        columns=["dataset", "algorithm", "relative_size"],
        chart_value="relative_size",
    )
    by_cell = {(r["dataset"], r["algorithm"]): r["relative_size"] for r in rows}
    datasets = {r["dataset"] for r in rows}
    wins = sum(
        by_cell[(code, "Mags-DM")] <= by_cell[(code, "SWeG")] + 0.01
        for code in datasets
    )
    assert wins >= len(datasets) * 0.7
