"""Shared glue for the per-figure bench modules.

Each bench module wraps one experiment from
:mod:`repro.bench.experiments` in a pytest-benchmark test, prints the
paper-style table, and persists it under ``bench_results/``.

Environment knobs:

* ``REPRO_BENCH_T``     — iteration count T (default 20; paper: 50).
* ``REPRO_BENCH_QUICK`` — set to 1 for reduced dataset grids.

Results are memoised per process, so benches that share runs (e.g.
Figure 4 and Figure 6 print compactness and time of the same
executions) only pay once.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.bench.charts import grouped_bar_chart, series_chart
from repro.bench.reporting import format_table, save_report

__all__ = ["run_and_report"]


def run_and_report(
    benchmark,
    experiment: Callable[[], tuple[str, list[dict]]],
    name: str,
    columns: Sequence[str] | None = None,
    chart_value: str | None = None,
    chart_log: bool = False,
    series_x: str | None = None,
) -> list[dict]:
    """Time ``experiment`` once, print and save its table, return rows.

    When ``chart_value`` names a row column and the rows carry
    dataset/algorithm keys, a grouped bar chart (the paper's figure
    shape) is appended to the saved report.
    """
    title, rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report = format_table(rows, columns=columns, title=title)
    if series_x and chart_value and rows:
        # Sweep figures (11-16): one series per (dataset, algorithm).
        keyed = [
            {**r, "series": f"{r['dataset']}/{r['algorithm']}"}
            for r in rows
        ]
        report += "\n\n" + series_chart(
            keyed, "series", series_x, chart_value,
            title=f"{title} — series",
        )
    elif (
        chart_value
        and rows
        and "dataset" in rows[0]
        and "algorithm" in rows[0]
    ):
        report += "\n\n" + grouped_bar_chart(
            rows, "dataset", "algorithm", chart_value,
            title=f"{title} — chart", log_scale=chart_log,
        )
    print("\n" + report)
    save_report(report, name)
    return rows
