"""Figure 7: running time on large graphs.

Expected shape (paper): Mags-DM is the fastest of the paper's pair by
~an order of magnitude (13.4x on the real testbed).
"""

from repro.bench import experiments, geometric_mean

from _util import run_and_report


def test_fig7_time_large(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig5_fig7_large_graphs,
        "fig7_time_large",
        columns=["dataset", "algorithm", "time_s", "note"],
        chart_value="time_s",
        chart_log=True,
    )
    times = {}
    for r in rows:
        if r["time_s"] is not None:
            times.setdefault(r["algorithm"], {})[r["dataset"]] = r["time_s"]
    ratios = [
        times["Mags"][code] / times["Mags-DM"][code]
        for code in times["Mags"]
        if code in times["Mags-DM"]
    ]
    assert geometric_mean(ratios) > 2.0  # Mags-DM clearly faster
