"""Empirical complexity check: runtime vs graph size.

The paper's complexity claims (Theorems 2-5): Mags runs in
``O(T * m * (d_avg + log m))`` and Mags-DM in ``O(T * m)``.  This
bench times both on a geometric series of same-family graphs
(templated web, constant average degree) and fits the log-log slope —
near 1 means linear in m, which is what the theorems predict at fixed
``d_avg`` up to the log factor and interpreter noise.
"""

import math
import time

from repro.algorithms import MagsDMSummarizer, MagsSummarizer
from repro.bench import format_table, save_report
from repro.graph.generators import templated_web


def _workload(scale: int):
    n = 500 * scale
    return templated_web(
        n,
        templates=20 * scale,
        hubs=60 * scale,
        template_size=8,
        mutation=0.08,
        seed=scale,
    )


def _fit_slope(points: list[tuple[int, float]]) -> float:
    """Least-squares slope of log(time) vs log(m)."""
    xs = [math.log(m) for m, __ in points]
    ys = [math.log(t) for __, t in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    return cov / var


def test_scalability_curve(benchmark):
    scales = [1, 2, 4, 8]
    T = 15

    def run():
        rows = []
        series: dict[str, list[tuple[int, float]]] = {
            "Mags": [], "Mags-DM": [],
        }
        for scale in scales:
            graph = _workload(scale)
            for label, factory in (
                ("Mags", lambda: MagsSummarizer(iterations=T, seed=0)),
                ("Mags-DM", lambda: MagsDMSummarizer(iterations=T, seed=0)),
            ):
                start = time.perf_counter()
                result = factory().summarize(graph)
                elapsed = time.perf_counter() - start
                series[label].append((graph.m, elapsed))
                rows.append(
                    {
                        "algorithm": label,
                        "n": graph.n,
                        "m": graph.m,
                        "time_s": elapsed,
                        "relative_size": result.relative_size,
                    }
                )
        for label, points in series.items():
            rows.append(
                {
                    "algorithm": f"{label} (log-log slope)",
                    "n": None,
                    "m": None,
                    "time_s": _fit_slope(points),
                    "relative_size": None,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        rows, title="Empirical complexity: runtime vs m (Theorems 2-5)"
    )
    print("\n" + report)
    save_report(report, "scalability")
    slopes = {
        r["algorithm"]: r["time_s"]
        for r in rows
        if "slope" in r["algorithm"]
    }
    # Near-linear growth in m; allow generous interpreter slack but
    # reject anything resembling quadratic behaviour.
    assert slopes["Mags-DM (log-log slope)"] < 1.6
    assert slopes["Mags (log-log slope)"] < 1.8
