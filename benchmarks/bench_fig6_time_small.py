"""Figure 6: running time on small graphs (5 algorithms).

Expected shape (paper): Greedy is 2-4 orders of magnitude slower than
Mags; Mags-DM is the fastest of the paper's pair.
"""

from repro.bench import experiments

from _util import run_and_report


def test_fig6_time_small(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig4_fig6_small_graphs,
        "fig6_time_small",
        columns=["dataset", "algorithm", "time_s"],
        chart_value="time_s",
        chart_log=True,
    )
    times = {}
    for r in rows:
        times.setdefault(r["algorithm"], []).append(r["time_s"])
    # Shape check: Greedy's total time dominates Mags's.
    assert sum(times["Greedy"]) > sum(times["Mags"])
