"""Microbenchmarks of the package's hot paths.

Unlike the figure benches (one timed end-to-end run each), these use
pytest-benchmark's statistical looping: they are the regression guard
for the inner loops every algorithm sits on — saving evaluation,
merging, signature construction, encoding, and reconstruction.
"""

import pytest

from repro.core.encoding import encode
from repro.core.minhash import MinHashSignatures
from repro.core.supernodes import SuperNodePartition
from repro.graph.generators import planted_partition


@pytest.fixture(scope="module")
def graph():
    return planted_partition(400, 20, 0.5, 0.01, seed=7)


@pytest.fixture(scope="module")
def partition(graph):
    p = SuperNodePartition(graph)
    for u in range(0, 100, 2):
        ru, rv = p.find(u), p.find(u + 1)
        if ru != rv:
            p.merge(ru, rv)
    return p


def test_micro_saving(benchmark, partition):
    roots = sorted(partition.roots())
    pairs = list(zip(roots[:64], roots[64:128]))

    def run():
        total = 0.0
        for u, v in pairs:
            total += partition.saving(u, v)
        return total

    benchmark(run)


def test_micro_merge_and_rebuild(benchmark, graph):
    def run():
        p = SuperNodePartition(graph)
        roots = sorted(p.roots())
        for u, v in zip(roots[0:60:2], roots[1:60:2]):
            p.merge(p.find(u), p.find(v))
        return p.num_merges

    benchmark(run)


def test_micro_minhash_signatures(benchmark, graph):
    benchmark(lambda: MinHashSignatures(graph, 40, seed=1))


def test_micro_encode(benchmark, partition):
    benchmark(lambda: encode(partition))


def test_micro_reconstruct(benchmark, partition):
    rep = encode(partition)
    benchmark(lambda: rep.reconstruct_edges())


def test_micro_neighbor_queries(benchmark, graph, partition):
    from repro.queries.neighbors import SummaryNeighborIndex

    index = SummaryNeighborIndex(encode(partition))

    def run():
        return sum(len(index.neighbors(q)) for q in range(0, graph.n, 7))

    benchmark(run)
