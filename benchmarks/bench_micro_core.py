"""Microbenchmarks of the package's hot paths.

Unlike the figure benches (one timed end-to-end run each), these use
pytest-benchmark's statistical looping: they are the regression guard
for the inner loops every algorithm sits on — saving evaluation,
merging, signature construction, encoding, and reconstruction.

``tools/perf_gate.py`` runs this file with ``--benchmark-json`` and
compares the results against the committed baseline in
``bench_results/micro_core_baseline.json``; keep the workload builders
below deterministic, because the gate's speedup ratios assume the
batched and scalar benches score the *same* pair list.
"""

import pytest

from repro.core.encoding import encode
from repro.core.minhash import MinHashSignatures
from repro.core.supernodes import SuperNodePartition
from repro.graph.generators import planted_partition


def build_graph():
    """The shared micro-bench graph (fixed seed, ~400 nodes)."""
    return planted_partition(400, 20, 0.5, 0.01, seed=7)


def build_partition(graph):
    """Deterministic partially-merged partition over ``graph``."""
    p = SuperNodePartition(graph)
    for u in range(0, 100, 2):
        ru, rv = p.find(u), p.find(u + 1)
        if ru != rv:
            p.merge(ru, rv)
    return p


def candidate_pairs(partition, groups=24):
    """Realistic saving workload: 2-hop candidates of ``groups`` roots.

    Grouped by first endpoint — the shape every consumer hands to
    ``savings_many`` — so the batched and scalar saving benches time
    the same work the algorithms do.
    """
    pairs = []
    for u in sorted(partition.roots())[:groups]:
        two_hop = set()
        for x in partition.weights(u):
            two_hop.update(partition.weights(x))
        two_hop.discard(u)
        pairs.extend((u, v) for v in sorted(two_hop))
    return pairs


@pytest.fixture(scope="module")
def graph():
    return build_graph()


@pytest.fixture(scope="module")
def partition(graph):
    return build_partition(graph)


@pytest.fixture(scope="module")
def pairs(partition):
    return candidate_pairs(partition)


def test_micro_saving(benchmark, partition):
    roots = sorted(partition.roots())
    pairs = list(zip(roots[:64], roots[64:128]))

    def run():
        total = 0.0
        for u, v in pairs:
            total += partition.saving(u, v)
        return total

    benchmark(run)


def test_micro_saving_pairs_batched(benchmark, partition, pairs):
    """The batched kernel over a grouped candidate sweep."""
    benchmark(lambda: partition.savings_many(pairs))


def test_micro_saving_pairs_scalar(benchmark, partition, pairs):
    """The same sweep through the scalar path, pair by pair.

    ``tools/perf_gate.py`` divides this bench's mean by the batched
    bench's mean to get the machine-independent kernel speedup.
    """

    def run():
        return [partition.saving(u, v) for u, v in pairs]

    benchmark(run)


def test_micro_merge_and_rebuild(benchmark, graph):
    def run():
        p = SuperNodePartition(graph)
        roots = sorted(p.roots())
        for u, v in zip(roots[0:60:2], roots[1:60:2]):
            p.merge(p.find(u), p.find(v))
        return p.num_merges

    benchmark(run)


def test_micro_minhash_signatures(benchmark, graph):
    benchmark(lambda: MinHashSignatures(graph, 40, seed=1))


def test_micro_encode(benchmark, partition):
    benchmark(lambda: encode(partition))


def test_micro_reconstruct(benchmark, partition):
    rep = encode(partition)
    benchmark(lambda: rep.reconstruct_edges())


def test_micro_neighbor_queries(benchmark, graph, partition):
    from repro.queries.neighbors import SummaryNeighborIndex

    index = SummaryNeighborIndex(encode(partition))

    def run():
        return sum(len(index.neighbors(q)) for q in range(0, graph.n, 7))

    benchmark(run)
