"""Compactness drift under sustained mutations, maintenance on/off.

Online ingest absorbs each edge mutation in O(1) by freezing the
super-node structure, so a stream that changes the community structure
makes the live summary drift: cost/m rises while a from-scratch
re-summarization of the same graph stays compact.  This bench sweeps
mutation count and reports three tracks over one deterministic
rewiring script — ``drift`` (overlay only), ``maintained`` (periodic
budgeted ``maintenance_pass`` ticks), and ``scratch`` (the floor) —
asserting the PR's acceptance bar: after the full stream the
maintained summary stays within 1.15x of from-scratch while the
unmaintained overlay drifts past 1.5x.
"""

from _util import run_and_report

from repro.bench import experiments
from repro.bench.runner import quick_mode


def test_compactness_drift(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.compactness_drift,
        "compactness_drift",
        columns=[
            "mutations", "m", "scratch_cost_per_m",
            "maintained_cost_per_m", "drift_cost_per_m",
            "maintained_ratio", "drift_ratio", "maintenance_passes",
        ],
    )
    assert rows, "no checkpoints recorded"
    final = rows[-1]
    # Maintenance holds the live summary near the from-scratch floor.
    assert final["maintained_ratio"] <= 1.15, final
    assert final["maintenance_passes"] > 0
    for row in rows:
        assert row["maintained_ratio"] <= row["drift_ratio"] + 1e-9
    if not quick_mode():
        # The full >=10k-mutation stream must show the unmaintained
        # overlay demonstrably drifting (the quick smoke stream is too
        # short to open a 1.5x gap).
        assert final["mutations"] >= 10_000, final
        assert final["drift_ratio"] >= 1.5, final
