"""Ablation (beyond the paper's figures): Mags candidate budget k as a
cost/quality frontier — the knob DESIGN.md calls out as the heart of the
unpromising-pair reduction.

Expected shape: small k already captures nearly all the compactness;
candidate-generation time grows with k.
"""

from repro.algorithms import MagsSummarizer
from repro.bench import format_table, save_report
from repro.bench.runner import bench_iterations, run_on_dataset


def test_ablation_candidates(benchmark):
    T = bench_iterations()
    code = "EN"

    def run():
        rows = []
        for k in (2, 5, 10, 20, 40):
            result = run_on_dataset(
                code, lambda: MagsSummarizer(iterations=T, k=k)
            )
            rows.append(
                {
                    "dataset": code,
                    "k": k,
                    "relative_size": result.relative_size,
                    "candidates_time_s": result.phase_seconds.get(
                        "candidate_generation"
                    ),
                    "time_s": result.runtime_seconds,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        rows, title="Ablation: Mags candidate budget k (cost/quality)"
    )
    print("\n" + report)
    save_report(report, "ablation_candidates")
    assert rows[-1]["relative_size"] <= rows[0]["relative_size"] + 0.01
