"""Figure 4: summary compactness on small graphs (5 algorithms).

Expected shape (paper): Greedy is the most compact; Mags within 0.1%
and Mags-DM within ~2% of it; LDME and Slugger trail by 20-30%.
"""

from repro.bench import experiments

from _util import run_and_report


def test_fig4_compactness_small(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig4_fig6_small_graphs,
        "fig4_compactness_small",
        columns=["dataset", "algorithm", "relative_size"],
        chart_value="relative_size",
    )
    by_cell = {(r["dataset"], r["algorithm"]): r["relative_size"] for r in rows}
    datasets = {r["dataset"] for r in rows}
    # Shape check: Mags tracks Greedy closely on every small graph.
    for code in datasets:
        assert by_cell[(code, "Mags")] <= by_cell[(code, "Greedy")] + 0.02
