"""Figure 10: Mags-DM strategy ablation — running time.

Expected shape (paper): the dividing strategy is the big time win
(14.4x there); SWeG is by far the slowest (202x there).  SWeG's
quadratic group cost only bites once groups are sizable, so the shape
check targets the large-graph cells; on the toy small graphs,
fixed interpreter overheads dominate and SWeG can even lead.
"""

from repro.bench import experiments
from repro.graph.datasets import SMALL_DATASETS

from _util import run_and_report


def test_fig10_magsdm_ablation_time(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig9_fig10_magsdm_ablation,
        "fig10_magsdm_ablation_time",
        columns=["dataset", "algorithm", "time_s"],
    )
    large_rows = [r for r in rows if r["dataset"] not in SMALL_DATASETS]
    total = {}
    for r in large_rows or rows:
        total[r["algorithm"]] = total.get(r["algorithm"], 0.0) + r["time_s"]
    if large_rows:
        assert total["Mags-DM"] < total["SWeG"]
    else:  # quick mode: only assert sanity, not the scale effect
        assert total["Mags-DM"] < total["SWeG"] * 25
