"""Figure 12: running time vs iteration count T.

Expected shape (paper): time grows moderately with T (about +35-37%
from T=10 to T=50 there), not linearly, because later iterations have
little work left.
"""

from repro.bench import experiments

from _util import run_and_report


def test_fig12_time_vs_T(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.fig11_fig12_iterations_sweep,
        "fig12_time_vs_T",
        columns=["dataset", "algorithm", "T", "time_s"],
        chart_value="time_s",
        series_x="T",
    )
    series = {}
    for r in rows:
        series.setdefault((r["dataset"], r["algorithm"]), []).append(
            (r["T"], r["time_s"])
        )
    # Aggregate sub-linear growth: Mags-DM's dividing phase is O(n)
    # per round regardless of merges, so an individual series can
    # approach linear; across all series, 5x iterations must cost
    # clearly less than 5x time (the paper reports ~+37%).
    low_total = high_total = 0.0
    ratio_T = 1.0
    for points in series.values():
        points.sort()
        low_total += points[0][1]
        high_total += points[-1][1]
        ratio_T = points[-1][0] / points[0][0]
    assert high_total < low_total * ratio_T * 0.9
