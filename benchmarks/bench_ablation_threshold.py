"""Ablation (beyond the paper's figures): omega(t) vs theta(t) inside
Mags-DM, isolating Merging Strategy 3.

Expected shape: omega's slower early decay defers low-quality merges
and yields an equal-or-more compact summary (the paper reports ~1%).
"""

from repro.algorithms import MagsDMSummarizer
from repro.bench import format_table, save_report
from repro.bench.runner import bench_iterations, run_on_dataset
from repro.bench.experiments import small_codes


def test_ablation_threshold(benchmark):
    T = bench_iterations()

    def run():
        rows = []
        for code in small_codes():
            for label, threshold in (("omega", "omega"), ("theta", "theta")):
                result = run_on_dataset(
                    code,
                    lambda: MagsDMSummarizer(iterations=T, threshold=threshold),
                )
                rows.append(
                    {
                        "dataset": code,
                        "threshold": label,
                        "relative_size": result.relative_size,
                        "time_s": result.runtime_seconds,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(rows, title="Ablation: omega(t) vs theta(t) in Mags-DM")
    print("\n" + report)
    save_report(report, "ablation_threshold")
    by_cell = {(r["dataset"], r["threshold"]): r["relative_size"] for r in rows}
    wins = sum(
        by_cell[(c, "omega")] <= by_cell[(c, "theta")] + 0.01
        for c in {r["dataset"] for r in rows}
    )
    assert wins >= len({r["dataset"] for r in rows}) * 0.6
