"""Durable ingest under mixed read/write load.

Closed-loop clients interleave ``neighbors`` reads with acknowledged
(WAL-appended, fsynced) single-edge ``ingest`` writes against a live
mutable server, at two mixes:

* ``90/10`` — read-heavy serving with a trickle of updates;
* ``50/50`` — write-heavy stress on the fsync + commit path.

Reported per mix: sustained total throughput, durable writes/sec
(each one fsynced before its ack), and separate read/write latency
percentiles — the read-latency price of a write-heavy mix is the
number to watch.  The experiment itself asserts zero
acknowledged-but-lost writes (final epoch == ack count).
"""

from _util import run_and_report

from repro.bench import experiments


def test_mixed_ingest_throughput(benchmark):
    rows = run_and_report(
        benchmark,
        experiments.mixed_ingest_throughput,
        "mixed_ingest_throughput",
        columns=[
            "mix", "threads", "reads", "writes", "total_qps",
            "writes_per_s", "read_p50_ms", "read_p99_ms",
            "write_p50_ms", "write_p99_ms",
        ],
    )
    by_mix = {r["mix"]: r for r in rows}
    assert set(by_mix) == {"90/10", "50/50"}
    for row in rows:
        assert row["reads"] > 0 and row["writes"] > 0
        assert row["writes_per_s"] > 0
        assert row["read_p50_ms"] <= row["read_p99_ms"]
        assert row["write_p50_ms"] <= row["write_p99_ms"]
    # The 50/50 mix must actually be write-heavier than 90/10.
    assert by_mix["50/50"]["writes"] > by_mix["90/10"]["writes"]
