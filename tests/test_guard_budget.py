"""Resource governance tests: budgets and the anytime contract.

The contract under test (ISSUE 5 tentpole): a summarization run given
a :class:`~repro.resilience.guard.ResourceBudget` that runs out stops
merging at the next safe boundary and returns a **valid lossless
summary of the work done so far**, flagged ``truncated`` — and a
budget that never trips changes *nothing*, bit for bit.
"""

import time

import pytest

from repro.algorithms.greedy import GreedySummarizer
from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.serialization import load_representation, save_representation
from repro.core.verify import deep_audit, verify_lossless
from repro.graph.generators import planted_partition
from repro.resilience.guard import ResourceBudget, current_rss_mb


@pytest.fixture(scope="module")
def graph():
    return planted_partition(200, 10, 0.55, 0.04, seed=3)


SUMMARIZERS = {
    "mags": lambda: MagsSummarizer(iterations=8, seed=1),
    "mags-dm": lambda: MagsDMSummarizer(iterations=8, seed=1),
    "greedy": lambda: GreedySummarizer(seed=1),
}


class TestResourceBudget:
    def test_rejects_nonsensical_limits(self):
        with pytest.raises(ValueError):
            ResourceBudget(time_budget=-1.0)
        with pytest.raises(ValueError):
            ResourceBudget(memory_budget_mb=0)
        with pytest.raises(ValueError):
            ResourceBudget(max_merges=-5)
        with pytest.raises(ValueError):
            ResourceBudget(max_candidates=-1)
        with pytest.raises(ValueError):
            ResourceBudget(poll_interval=0.0)

    def test_time_budget_trips(self):
        budget = ResourceBudget(time_budget=0.01)
        with budget:
            time.sleep(0.03)
            assert budget.exhausted() == "time_budget"
        assert "time_budget" in budget.trips

    def test_merge_cap_trips(self):
        budget = ResourceBudget(max_merges=3)
        with budget:
            budget.note_merges(2)
            assert budget.exhausted() is None
            budget.note_merges(1)
            assert budget.exhausted() == "merge_cap"

    def test_candidate_cap_clamps(self):
        budget = ResourceBudget(max_candidates=2)
        with budget:
            kept = budget.clamp_candidates([1, 2, 3, 4])
            assert kept == [1, 2]
            assert "candidate_cap" in budget.trips
            # Under the cap nothing is clamped or recorded twice.
            assert budget.clamp_candidates([5]) == [5]

    def test_never_tripped_budget_reports_nothing(self):
        budget = ResourceBudget(time_budget=3600.0, max_merges=10**9)
        with budget:
            budget.note_merges(1)
            assert budget.exhausted() is None
        assert budget.trips == []

    def test_restartable(self):
        budget = ResourceBudget(max_merges=1)
        with budget:
            budget.note_merges(1)
            assert budget.exhausted() == "merge_cap"
        # A second run starts from zero.
        with budget:
            assert budget.exhausted() is None

    def test_current_rss_readable_on_linux(self):
        rss = current_rss_mb()
        # May be None on exotic platforms; on the CI image it is real.
        if rss is not None:
            assert rss > 1.0


class TestAnytimeContract:
    @pytest.mark.parametrize("name", sorted(SUMMARIZERS))
    def test_zero_time_budget_is_lossless_and_flagged(self, graph, name):
        summarizer = SUMMARIZERS[name]().configure_budget(
            ResourceBudget(time_budget=0.0)
        )
        result = summarizer.summarize(graph)
        assert result.truncated
        assert result.truncated_reason == "time_budget"
        verify_lossless(graph, result.representation)
        assert deep_audit(result.representation, graph) == []
        assert "truncated=time_budget" in result.summary_line()

    @pytest.mark.parametrize("name", sorted(SUMMARIZERS))
    def test_merge_cap_respected(self, graph, name):
        summarizer = SUMMARIZERS[name]().configure_budget(
            ResourceBudget(max_merges=5)
        )
        result = summarizer.summarize(graph)
        assert result.truncated
        assert result.truncated_reason == "merge_cap"
        # Batched algorithms may overshoot within one committed batch,
        # but never by more than the batch that crossed the line.
        assert graph.n - result.representation.num_supernodes <= 64
        verify_lossless(graph, result.representation)

    def test_candidate_cap_truncates_mags(self, graph):
        summarizer = MagsSummarizer(iterations=8, seed=1).configure_budget(
            ResourceBudget(max_candidates=10)
        )
        result = summarizer.summarize(graph)
        assert result.truncated
        assert result.truncated_reason == "candidate_cap"
        verify_lossless(graph, result.representation)

    @pytest.mark.parametrize("name", sorted(SUMMARIZERS))
    def test_generous_budget_is_bit_identical(self, graph, name, tmp_path):
        plain = SUMMARIZERS[name]().summarize(graph)
        budgeted = SUMMARIZERS[name]().configure_budget(
            ResourceBudget(
                time_budget=3600.0,
                max_merges=10**9,
                max_candidates=10**9,
            )
        ).summarize(graph)
        assert not budgeted.truncated
        a = tmp_path / "plain.txt"
        b = tmp_path / "budgeted.txt"
        save_representation(a, plain.representation)
        save_representation(b, budgeted.representation)
        assert a.read_bytes() == b.read_bytes()

    def test_budget_detaches(self, graph):
        summarizer = MagsSummarizer(iterations=4, seed=1).configure_budget(
            ResourceBudget(time_budget=0.0)
        )
        assert summarizer.summarize(graph).truncated
        summarizer.configure_budget(None)
        assert not summarizer.summarize(graph).truncated

    def test_truncated_artifact_roundtrips(self, graph, tmp_path):
        summarizer = MagsSummarizer(iterations=8, seed=1).configure_budget(
            ResourceBudget(max_merges=10)
        )
        result = summarizer.summarize(graph)
        path = tmp_path / "truncated.txt"
        save_representation(path, result.representation)
        loaded = load_representation(path)
        assert deep_audit(loaded, graph) == []

    def test_trips_counted_in_metrics(self, graph):
        from repro.obs.metrics import get_registry

        registry = get_registry()

        def trips(reason):
            for labels, metric in registry.family(
                "repro_guard_budget_trips_total"
            ):
                if labels.get("reason") == reason:
                    return metric.value
            return 0

        before = trips("merge_cap")
        MagsSummarizer(iterations=4, seed=1).configure_budget(
            ResourceBudget(max_merges=2)
        ).summarize(graph)
        assert trips("merge_cap") == before + 1
