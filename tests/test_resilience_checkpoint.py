"""Tests for the checkpoint store and algorithm crash/resume."""

import json

import pytest

from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.verify import verify_lossless
from repro.graph import generators
from repro.resilience import (
    CheckpointCorrupt,
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    use_injector,
)


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        state = {"iteration": 4, "merge_log": [[1, 2], [3, 4]]}
        path = store.save(state, 4)
        assert path.name == "ckpt-00000004.json"
        loaded = store.load(4)
        assert loaded.step == 4
        assert loaded.state == state
        assert loaded.path == path

    def test_versioned_filenames_sorted(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=10)
        for step in (7, 2, 11):
            store.save({"s": step}, step)
        assert store.steps() == [2, 7, 11]

    def test_no_temp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"x": 1}, 1)
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt-00000001.json"]

    def test_prune_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for step in range(5):
            store.save({"s": step}, step)
        assert store.steps() == [3, 4]

    def test_keep_validation(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(tmp_path, keep=0)

    def test_empty_directory(self, tmp_path):
        store = CheckpointStore(tmp_path / "missing")
        assert store.steps() == []
        assert store.latest() is None

    def test_truncated_file_is_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save({"x": 1}, 3)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(CheckpointCorrupt):
            store.load(3)

    def test_checksum_detects_state_mutation(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save({"x": 1}, 3)
        record = json.loads(path.read_text())
        record["state"]["x"] = 2  # tamper without updating the checksum
        path.write_text(json.dumps(record))
        with pytest.raises(CheckpointCorrupt, match="checksum"):
            store.load(3)

    def test_version_mismatch_is_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save({"x": 1}, 3)
        record = json.loads(path.read_text())
        record["v"] = 99
        path.write_text(json.dumps(record))
        with pytest.raises(CheckpointCorrupt, match="version"):
            store.load(3)

    def test_step_mismatch_is_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        source = store.save({"x": 1}, 3)
        source.rename(store.path_for(5))
        with pytest.raises(CheckpointCorrupt, match="claims step"):
            store.load(5)

    def test_latest_skips_corrupt_and_counts(self, tmp_path):
        from repro.obs.metrics import get_registry

        skipped = get_registry().counter(
            "repro_resilience_checkpoints_total", event="corrupt_skipped"
        )
        before = skipped.value
        store = CheckpointStore(tmp_path)
        store.save({"s": 1}, 1)
        newest = store.save({"s": 2}, 2)
        newest.write_bytes(b"not json at all")
        checkpoint = store.latest()
        assert checkpoint is not None and checkpoint.step == 1
        assert skipped.value == before + 1

    def test_injected_corruption_on_write(self, tmp_path):
        store = CheckpointStore(tmp_path)
        injector = FaultInjector(FaultPlan().corrupt("checkpoint:write"))
        with use_injector(injector):
            store.save({"payload": "x" * 200}, 1)
        assert injector.fired_count("checkpoint:write") == 1
        with pytest.raises(CheckpointCorrupt):
            store.load(1)


class TestConfigureCheckpointing:
    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            MagsDMSummarizer().configure_checkpointing(
                CheckpointStore(tmp_path), interval=0
            )

    def test_algorithm_mismatch_rejected(self, tmp_path):
        graph = generators.caveman(6, 8, seed=0)
        store = CheckpointStore(tmp_path)
        MagsDMSummarizer(iterations=4, seed=1).configure_checkpointing(
            store, interval=1
        ).summarize(graph)
        wrong = MagsSummarizer(iterations=4, seed=1).configure_checkpointing(
            store, resume=True
        )
        with pytest.raises(ValueError, match="checkpoint is for"):
            wrong.summarize(graph)


def _interrupted_then_resumed(make_summarizer, graph, store, crash_after):
    """Run to completion once (baseline), then crash a second run at
    iteration ``crash_after + 1`` and resume it; returns both results."""
    baseline = make_summarizer().summarize(graph)

    injector = FaultInjector(
        FaultPlan().crash("summarize:iteration", after=crash_after)
    )
    interrupted = make_summarizer().configure_checkpointing(store, interval=2)
    with use_injector(injector):
        with pytest.raises(InjectedFault):
            interrupted.summarize(graph)
    assert store.latest() is not None

    resumed = make_summarizer().configure_checkpointing(
        store, interval=2, resume=True
    ).summarize(graph)
    return baseline, resumed


class TestCrashResumeEquivalence:
    """A resumed run must match the uninterrupted baseline *exactly* —
    the merge-log replay reproduces identical partition roots, so the
    remaining iterations see identical state."""

    @pytest.fixture(scope="class")
    def graph(self):
        return generators.planted_partition(180, 9, 0.6, 0.03, seed=5)

    def test_mags_dm_resume_matches_baseline(self, graph, tmp_path):
        store = CheckpointStore(tmp_path)
        baseline, resumed = _interrupted_then_resumed(
            lambda: MagsDMSummarizer(iterations=10, seed=3),
            graph, store, crash_after=6,
        )
        verify_lossless(graph, resumed.representation)
        assert resumed.relative_size == baseline.relative_size
        assert resumed.cost == baseline.cost
        assert resumed.num_merges == baseline.num_merges
        assert (
            resumed.representation.supernodes
            == baseline.representation.supernodes
        )

    def test_mags_resume_matches_baseline(self, graph, tmp_path):
        store = CheckpointStore(tmp_path)
        baseline, resumed = _interrupted_then_resumed(
            lambda: MagsSummarizer(iterations=10, seed=3),
            graph, store, crash_after=6,
        )
        verify_lossless(graph, resumed.representation)
        assert resumed.relative_size == baseline.relative_size
        assert resumed.cost == baseline.cost
        assert resumed.num_merges == baseline.num_merges

    def test_resume_without_checkpoint_starts_fresh(self, graph, tmp_path):
        store = CheckpointStore(tmp_path / "empty")
        result = MagsDMSummarizer(
            iterations=6, seed=3
        ).configure_checkpointing(store, resume=True).summarize(graph)
        verify_lossless(graph, result.representation)
