"""Tests for the Graph substrate."""

import numpy as np
import pytest

from repro.graph.graph import Graph, GraphError


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.n == 0
        assert g.m == 0
        assert g.avg_degree == 0.0

    def test_nodes_without_edges(self):
        g = Graph(4, [])
        assert g.n == 4
        assert g.m == 0
        assert all(g.degree(u) == 0 for u in g.nodes())

    def test_basic_graph(self, triangle):
        assert triangle.n == 3
        assert triangle.m == 3
        assert triangle.avg_degree == 2.0

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1, [])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            Graph(3, [(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            Graph(3, [(0, 1), (0, 1)])

    def test_reversed_duplicate_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            Graph(3, [(0, 1), (1, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            Graph(3, [(0, 3)])

    def test_from_edge_list_infers_n(self):
        g = Graph.from_edge_list([(0, 5), (2, 3)])
        assert g.n == 6
        assert g.m == 2

    def test_from_edge_list_empty(self):
        g = Graph.from_edge_list([])
        assert g.n == 0


class TestAccessors:
    def test_neighbors_symmetric(self, triangle):
        for u in triangle.nodes():
            for v in triangle.neighbors(u):
                assert u in triangle.neighbors(v)

    def test_neighbors_is_readonly_view(self, triangle):
        assert isinstance(triangle.neighbors(0), frozenset)

    def test_degree_matches_neighbors(self, star_graph):
        assert star_graph.degree(0) == 9
        assert all(star_graph.degree(leaf) == 1 for leaf in range(1, 10))

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)
        assert not triangle.has_edge(0, 0)

    def test_has_edge_out_of_range_is_false(self, triangle):
        assert not triangle.has_edge(0, 99)
        assert not triangle.has_edge(-1, 0)

    def test_edges_are_ordered_and_unique(self, paper_like_graph):
        edges = list(paper_like_graph.edges())
        assert len(edges) == paper_like_graph.m
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_edge_set_roundtrip(self, paper_like_graph):
        rebuilt = Graph(
            paper_like_graph.n, sorted(paper_like_graph.edge_set())
        )
        assert rebuilt == paper_like_graph

    def test_avg_degree(self, paper_like_graph):
        g = paper_like_graph
        assert g.avg_degree == pytest.approx(2 * g.m / g.n)

    def test_equality(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(0, 1)])
        c = Graph(3, [(0, 2)])
        assert a == b
        assert a != c
        assert a != "not a graph"

    def test_not_hashable(self, triangle):
        with pytest.raises(TypeError):
            hash(triangle)

    def test_repr_mentions_sizes(self, triangle):
        assert "n=3" in repr(triangle)
        assert "m=3" in repr(triangle)


class TestDerivedStructures:
    def test_csr_shape(self, paper_like_graph):
        indptr, indices = paper_like_graph.csr()
        assert len(indptr) == paper_like_graph.n + 1
        assert len(indices) == 2 * paper_like_graph.m

    def test_csr_segments_match_adjacency(self, paper_like_graph):
        indptr, indices = paper_like_graph.csr()
        for u in paper_like_graph.nodes():
            segment = set(indices[indptr[u]:indptr[u + 1]].tolist())
            assert segment == set(paper_like_graph.neighbors(u))

    def test_csr_is_cached(self, triangle):
        assert triangle.csr() is triangle.csr()

    def test_csr_sorted_within_segment(self, paper_like_graph):
        indptr, indices = paper_like_graph.csr()
        for u in paper_like_graph.nodes():
            seg = indices[indptr[u]:indptr[u + 1]]
            assert list(seg) == sorted(seg)

    def test_degrees_array(self, star_graph):
        degrees = star_graph.degrees()
        assert degrees.dtype == np.int64
        assert degrees[0] == 9
        assert degrees[1:].tolist() == [1] * 9

    def test_subgraph_keeps_induced_edges(self, paper_like_graph):
        sub = paper_like_graph.subgraph([0, 1, 2])
        # Nodes 0,1,2 relabel to 0,1,2; edges (0,2),(1,2) survive.
        assert sub.n == 3
        assert sub.edge_set() == {(0, 2), (1, 2)}

    def test_subgraph_relabels_densely(self, paper_like_graph):
        sub = paper_like_graph.subgraph([5, 6, 7])
        assert sub.n == 3
        assert sub.m == 0

    def test_subgraph_ignores_duplicate_keep_ids(self, triangle):
        sub = triangle.subgraph([0, 1, 1, 0])
        assert sub.n == 2
        assert sub.edge_set() == {(0, 1)}


class TestSubgraphValidation:
    def test_out_of_range_keep_rejected(self, triangle):
        with pytest.raises(GraphError, match="keep ids"):
            triangle.subgraph([0, 99])
        with pytest.raises(GraphError, match="keep ids"):
            triangle.subgraph([-1, 0])

    def test_empty_keep(self, triangle):
        sub = triangle.subgraph([])
        assert sub.n == 0
        assert sub.m == 0
