"""Tests for graph sharding and the cluster planning step."""

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.cluster.sharder import ARTIFACT_TEMPLATE, plan_cluster, shard_graph
from repro.cluster.topology import default_spec, load_topology
from repro.core.serialization import load_representation
from repro.distributed.partitioning import shard_for_node
from repro.graph.generators import planted_partition
from repro.graph.graph import Graph


@pytest.fixture(scope="module")
def graph():
    return planted_partition(150, 10, 0.7, 0.02, seed=42)


class TestShardGraph:
    def test_union_of_shard_edges_is_input(self, graph):
        subgraphs = shard_graph(graph, 3, seed=1)
        union = set()
        for sub in subgraphs:
            union.update(sub.edges())
        assert union == set(graph.edges())

    def test_owned_neighborhoods_are_complete(self, graph):
        """The closure property routing correctness rests on: shard s
        holds the *full* global neighborhood of every node it owns."""
        shards = 3
        subgraphs = shard_graph(graph, shards, seed=1)
        for u in range(graph.n):
            owner = shard_for_node(u, shards, 1)
            assert set(subgraphs[owner].neighbors(u)) == set(
                graph.neighbors(u)
            )

    def test_cut_edges_duplicated_on_both_shards(self, graph):
        shards = 2
        subgraphs = shard_graph(graph, shards, seed=0)
        for u, v in graph.edges():
            su, sv = (
                shard_for_node(u, shards, 0),
                shard_for_node(v, shards, 0),
            )
            owners = {su, sv}
            for s in owners:
                assert (u, v) in set(subgraphs[s].edges())

    def test_global_id_space_preserved(self, graph):
        for sub in shard_graph(graph, 4, seed=0):
            assert sub.n == graph.n

    def test_single_shard_is_identity(self, graph):
        (only,) = shard_graph(graph, 1, seed=0)
        assert set(only.edges()) == set(graph.edges())

    def test_bad_shard_count_rejected(self, graph):
        with pytest.raises(ValueError, match="shards"):
            shard_graph(graph, 0)

    def test_empty_graph(self):
        subgraphs = shard_graph(Graph(5, []), 2, seed=0)
        assert all(sub.m == 0 and sub.n == 5 for sub in subgraphs)


class TestPlanCluster:
    def test_plan_writes_artifacts_and_topology(self, graph, tmp_path):
        spec = default_spec(2, 1, seed=0, base_port=7500)
        factory = lambda: MagsDMSummarizer(iterations=5, seed=0)  # noqa: E731
        report = plan_cluster(graph, spec, tmp_path, factory)

        assert spec.n == graph.n
        assert set(spec.artifacts) == {0, 1}
        for shard in (0, 1):
            path = tmp_path / ARTIFACT_TEMPLATE.format(shard=shard)
            assert path.exists()
            assert spec.artifact_path(shard) == path
        assert (tmp_path / "topology.json").exists()
        assert len(report.rows) == 2
        assert sum(row["owned_nodes"] for row in report.rows) == graph.n
        assert len(report.summary_lines()) == 2

    def test_planned_artifacts_reconstruct_shard_subgraphs(
        self, graph, tmp_path
    ):
        spec = default_spec(2, 1, seed=3, base_port=7500)
        factory = lambda: MagsDMSummarizer(iterations=5, seed=0)  # noqa: E731
        plan_cluster(graph, spec, tmp_path, factory)
        subgraphs = shard_graph(graph, 2, seed=3)
        for shard, sub in enumerate(subgraphs):
            rep = load_representation(spec.artifact_path(shard))
            assert set(rep.reconstruct().edges()) == set(sub.edges())

    def test_planned_topology_loads_back(self, graph, tmp_path):
        spec = default_spec(2, 2, seed=0, base_port=7500)
        factory = lambda: MagsDMSummarizer(iterations=5, seed=0)  # noqa: E731
        plan_cluster(graph, spec, tmp_path, factory)
        loaded = load_topology(tmp_path / "topology.json")
        assert loaded.n == graph.n
        assert loaded.artifact_path(0).exists()
        assert loaded.artifact_path(1).exists()
