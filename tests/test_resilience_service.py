"""Service-layer resilience: desync handling, oversized lines, load
shedding, the circuit breaker, degraded mode, and signal restoration.
"""

import json
import signal
import socket
import threading
import time

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.graph import generators
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultInjector, FaultPlan, use_injector
from repro.resilience.retry import RetryPolicy
from repro.service.client import SummaryServiceClient
from repro.service.engine import QueryEngine, QueryError, QueryTimeout
from repro.service.protocol import (
    MAX_LINE_BYTES,
    LineReader,
    ProtocolError,
    decode_line,
    encode_message,
)
from repro.service.server import SummaryQueryServer


@pytest.fixture(scope="module")
def rep():
    graph = generators.planted_partition(120, 8, 0.7, 0.02, seed=42)
    return MagsDMSummarizer(iterations=6, seed=1).summarize(
        graph
    ).representation


# ---------------------------------------------------------------------------
# Desynchronized responses (id mismatch)
# ---------------------------------------------------------------------------
class _StubServer:
    """Accepts connections sequentially and answers each first request
    with ``responder(request) -> response dict`` from a per-connection
    list; used to fake protocol violations a real server never
    commits."""

    def __init__(self, responders):
        self._responders = list(responders)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()[:2]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for responder in self._responders:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                reader = LineReader(conn)
                line = reader.readline()
                if line:
                    request = decode_line(line)
                    conn.sendall(encode_message(responder(request)))
            except OSError:
                pass
            finally:
                conn.close()

    def close(self):
        self._listener.close()
        self._thread.join(timeout=5)


def _wrong_id(request):
    return {
        "id": (request.get("id") or 0) + 1000,
        "ok": True,
        "op": request.get("op"),
        "result": "pong",
    }


def _correct(request):
    return {
        "id": request.get("id"),
        "ok": True,
        "op": request.get("op"),
        "result": "pong",
    }


class TestDesynchronizedClient:
    def test_id_mismatch_closes_and_marks_unusable(self):
        stub = _StubServer([_wrong_id])
        try:
            client = SummaryServiceClient(*stub.address, timeout=5.0)
            with pytest.raises(ConnectionError, match="does not match"):
                client.ping()
            assert not client.usable
            assert client._sock is None  # socket torn down immediately
            # Subsequent calls fail fast without touching the network.
            with pytest.raises(ConnectionError, match="unusable"):
                client.ping()
        finally:
            stub.close()

    def test_id_mismatch_with_retry_policy_replays_on_fresh_connection(self):
        stub = _StubServer([_wrong_id, _correct])
        try:
            client = SummaryServiceClient(
                *stub.address, timeout=5.0,
                retry_policy=RetryPolicy(
                    max_attempts=3, base_delay=0.001, max_delay=0.01
                ),
            )
            assert client.ping() == "pong"
            assert client.usable
        finally:
            stub.close()


# ---------------------------------------------------------------------------
# Oversized unterminated lines
# ---------------------------------------------------------------------------
class _ScriptedSock:
    """Duck-typed socket feeding ``recv`` from a chunk list."""

    def __init__(self, chunks):
        self._chunks = list(chunks)

    def recv(self, size):
        return self._chunks.pop(0) if self._chunks else b""


class TestOversizedLine:
    def test_reader_poisoned_after_oversized_unterminated_line(self):
        chunk = b"x" * 65536
        reader = LineReader(_ScriptedSock([chunk] * 20))
        with pytest.raises(ProtocolError, match="unterminated line exceeds"):
            reader.readline()
        # The stream has no recoverable framing left: every subsequent
        # read must keep failing instead of emitting garbage lines.
        with pytest.raises(ProtocolError, match="beyond resynchronization"):
            reader.readline()

    def test_terminated_long_line_is_rejected_but_stream_recovers(self):
        # A line whose terminator does arrive is framable: the reader
        # hands it over, decode_line rejects it (bad_request), and the
        # stream keeps working — only *unterminated* overruns poison.
        oversized = b"y" * (MAX_LINE_BYTES + 10) + b"\n"
        ping = encode_message({"id": 1, "op": "ping"})
        reader = LineReader(
            _ScriptedSock(
                [oversized[i: i + 65536]
                 for i in range(0, len(oversized), 65536)]
                + [ping]
            )
        )
        line = reader.readline()
        assert len(line) > MAX_LINE_BYTES
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_line(line)
        assert decode_line(reader.readline()) == {"id": 1, "op": "ping"}

    def test_server_sends_one_bad_request_then_closes(self, rep):
        engine = QueryEngine(rep, cache_size=64)
        with SummaryQueryServer(engine, workers=2) as server:
            with socket.create_connection(server.address, timeout=10) as sock:
                # One recv chunk past the bound, no terminator anywhere.
                sock.sendall(b"z" * (MAX_LINE_BYTES + 65536 + 1))
                data = b""
                while not data.endswith(b"\n"):
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                response = json.loads(data.decode())
                assert response["ok"] is False
                assert response["error"]["type"] == "bad_request"
                assert "unterminated line" in response["error"]["message"]
                # Exactly one error response, then the connection is
                # dropped (a reset if our unread bytes were pending).
                try:
                    assert sock.recv(65536) == b""
                except ConnectionResetError:
                    pass


# ---------------------------------------------------------------------------
# Load shedding
# ---------------------------------------------------------------------------
class TestLoadShedding:
    def test_overloaded_error_when_accept_queue_full(self, rep):
        engine = QueryEngine(rep, cache_size=64)
        server = SummaryQueryServer(
            engine, workers=1, max_pending=1, request_timeout=5.0
        )
        with server:
            shed_before = engine.metrics.snapshot()["resilience"]["shed"]
            # Occupy the single worker: a served connection that then
            # sits idle mid-session.
            busy = SummaryServiceClient(*server.address, timeout=10.0)
            assert busy.ping() == "pong"
            # Fill the accept queue with one unserved connection.
            queued = socket.create_connection(server.address, timeout=10)
            deadline = time.monotonic() + 5.0
            while (
                server._connections.qsize() < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert server._connections.qsize() == 1
            # The next arrival must be shed with a structured error.
            with socket.create_connection(
                server.address, timeout=10
            ) as extra:
                reader = LineReader(extra)
                response = decode_line(reader.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "overloaded"
                assert reader.readline() is None  # then closed
            assert (
                engine.metrics.snapshot()["resilience"]["shed"]
                == shed_before + 1
            )
            queued.close()
            busy.close()

    def test_max_pending_validation(self, rep):
        engine = QueryEngine(rep, cache_size=64)
        with pytest.raises(ValueError, match="max_pending"):
            SummaryQueryServer(engine, max_pending=0)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=30.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.times_opened == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_single_winner(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # Exactly one caller wins the probe slot.
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_rearms_the_window(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()  # probe
        breaker.record_failure()
        clock.now += 5.0  # only half the window since the failed probe
        assert not breaker.allow()
        clock.now += 5.0
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout"):
            CircuitBreaker(reset_timeout=-1.0)


class TestBreakerInServer:
    def _server(self, rep, breaker):
        # _handle_request needs no sockets; the server is never started.
        engine = QueryEngine(rep, cache_size=64)
        return SummaryQueryServer(engine, breaker=breaker)

    def test_internal_faults_open_breaker_and_reject(self, rep):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        server = self._server(rep, breaker)
        server.engine.query = _raise_runtime_error
        opened_before = server.metrics.snapshot()["resilience"][
            "breaker_opened"
        ]
        for i in range(2):
            response, _ = server._handle_request({"id": i, "op": "ping"})
            assert response["error"]["type"] == "internal"
        assert breaker.state == CircuitBreaker.OPEN
        response, _ = server._handle_request({"id": 3, "op": "ping"})
        assert response["error"]["type"] == "overloaded"
        assert "circuit breaker" in response["error"]["message"]
        snapshot = server.metrics.snapshot()["resilience"]
        assert snapshot["breaker_opened"] == opened_before + 1
        assert snapshot["breaker_rejected"] >= 1

    def test_query_errors_do_not_trip_the_breaker(self, rep):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        server = self._server(rep, breaker)
        for i in range(5):
            response, _ = server._handle_request(
                {"id": i, "op": "neighbors"}  # missing 'node'
            )
            assert response["error"]["type"] == "bad_request"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_shutdown_bypasses_an_open_breaker(self, rep):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        server = self._server(rep, breaker)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        response, stop = server._handle_request({"id": 1, "op": "shutdown"})
        assert response["ok"] is True
        assert stop is True


def _raise_runtime_error(request, deadline=None):
    raise RuntimeError("engine exploded")


# ---------------------------------------------------------------------------
# Degraded mode
# ---------------------------------------------------------------------------
class TestDegradedMode:
    def test_khop_truncated_and_flagged(self, rep):
        engine = QueryEngine(rep, cache_size=64, degraded=True)
        node = rep.reconstruct_edges().pop()[0]
        expired = time.monotonic()
        response = engine.query(
            {"id": 1, "op": "khop", "node": node, "k": 3}, deadline=expired
        )
        assert response["ok"] is True
        assert response["degraded"] is True
        assert response["result"][str(node)] == 0  # at least the origin
        assert (
            engine.metrics.snapshot()["resilience"]["degraded_by_op"].get(
                "khop", 0
            )
            >= 1
        )

    def test_pagerank_estimate_flagged(self, rep):
        engine = QueryEngine(rep, cache_size=64, degraded=True)
        node = rep.reconstruct_edges().pop()[0]
        expired = time.monotonic()
        response = engine.query(
            {"id": 1, "op": "pagerank", "node": node}, deadline=expired
        )
        assert response["ok"] is True
        assert response["degraded"] is True
        assert response["result"] > 0.0

    def test_unexpired_deadline_is_not_flagged(self, rep):
        engine = QueryEngine(rep, cache_size=64, degraded=True)
        node = rep.reconstruct_edges().pop()[0]
        response = engine.query(
            {"id": 1, "op": "khop", "node": node, "k": 2},
            deadline=time.monotonic() + 60.0,
        )
        assert response["ok"] is True
        assert "degraded" not in response

    def test_without_degraded_mode_expired_deadline_times_out(self, rep):
        engine = QueryEngine(rep, cache_size=64)
        node = rep.reconstruct_edges().pop()[0]
        with pytest.raises(QueryTimeout):
            engine.query(
                {"id": 1, "op": "khop", "node": node, "k": 3},
                deadline=time.monotonic(),
            )

    def test_non_degradable_ops_still_time_out(self, rep):
        engine = QueryEngine(rep, cache_size=64, degraded=True)
        with pytest.raises(QueryError):
            engine.query({"id": 1, "op": "ping"}, deadline=time.monotonic())


# ---------------------------------------------------------------------------
# Connection-drop retry against a real server
# ---------------------------------------------------------------------------
class TestClientRetry:
    def test_client_reconnects_after_injected_drop(self, rep):
        engine = QueryEngine(rep, cache_size=64)
        with SummaryQueryServer(engine, workers=2) as server:
            client = SummaryServiceClient(
                *server.address, timeout=10.0,
                retry_policy=RetryPolicy(
                    max_attempts=3, base_delay=0.001, max_delay=0.01
                ),
                retry_budget=10.0,
            )
            injector = FaultInjector(
                FaultPlan().drop("client:send", after=1, times=1)
            )
            with use_injector(injector):
                assert client.ping() == "pong"  # hit 1: untouched
                assert client.ping() == "pong"  # hit 2: dropped + retried
            assert injector.fired_count("client:send") == 1
            assert client.usable
            client.close()

    def test_client_without_policy_fails_fast_on_drop(self, rep):
        engine = QueryEngine(rep, cache_size=64)
        with SummaryQueryServer(engine, workers=2) as server:
            client = SummaryServiceClient(*server.address, timeout=10.0)
            injector = FaultInjector(FaultPlan().drop("client:send"))
            with use_injector(injector):
                with pytest.raises(ConnectionError):
                    client.ping()
            # A transport drop (unlike a desync) is retryable by hand:
            # the next request reconnects.
            assert client.usable
            assert client.ping() == "pong"
            client.close()


# ---------------------------------------------------------------------------
# Signal-handler restoration
# ---------------------------------------------------------------------------
class TestServeForeverSignals:
    def test_previous_handlers_restored_after_shutdown(self, rep):
        def sentinel(signum, frame):  # pragma: no cover - never fired
            pass

        originals = {
            signum: signal.signal(signum, sentinel)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            engine = QueryEngine(rep, cache_size=64)
            server = SummaryQueryServer(engine, workers=1)
            threading.Timer(0.2, server.shutdown).start()
            server.serve_forever()
            for signum in (signal.SIGINT, signal.SIGTERM):
                assert signal.getsignal(signum) is sentinel
        finally:
            for signum, handler in originals.items():
                signal.signal(signum, handler)

    def test_handlers_untouched_when_not_requested(self, rep):
        before = {
            signum: signal.getsignal(signum)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }
        engine = QueryEngine(rep, cache_size=64)
        server = SummaryQueryServer(engine, workers=1)
        threading.Timer(0.2, server.shutdown).start()
        server.serve_forever(install_signal_handlers=False)
        for signum, handler in before.items():
            assert signal.getsignal(signum) is handler


# ---------------------------------------------------------------------------
# rss_peak_mb fallback when the resource module is unavailable
# ---------------------------------------------------------------------------
class TestRssPeakFallback:
    def test_returns_none_without_resource_module(self, monkeypatch):
        import repro.bench.runner as runner

        monkeypatch.setattr(runner, "resource", None)
        assert runner.rss_peak_mb() is None

    def test_reporting_renders_missing_rss_as_dash(self):
        from repro.bench.reporting import format_table

        table = format_table(
            [{"dataset": "CA", "rss_peak_mb": None}],
            columns=["dataset", "rss_peak_mb"],
        )
        row = table.splitlines()[-1]
        assert "-" in row
        assert "None" not in table
