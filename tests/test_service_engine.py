"""Tests for the thread-safe summary query engine."""

import threading
import time

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.serialization import save_representation
from repro.queries.neighbors import neighbor_query
from repro.queries.pagerank import pagerank_summary
from repro.queries.traversal import bfs_distances
from repro.queries.neighbors import SummaryNeighborIndex
from repro.service.engine import (
    OPS,
    QueryEngine,
    QueryError,
    QueryTimeout,
)


@pytest.fixture
def rep(community_graph):
    return (
        MagsDMSummarizer(iterations=8, seed=1)
        .summarize(community_graph)
        .representation
    )


@pytest.fixture
def engine(rep):
    return QueryEngine(rep, cache_size=64)


class TestNeighbors:
    def test_matches_one_shot_query(self, engine, rep):
        for q in range(rep.n):
            assert set(engine.neighbors(q)) == neighbor_query(rep, q)

    def test_warm_cache_answers_match_cold(self, engine, rep):
        cold = {q: engine.neighbors(q) for q in range(60)}
        warm = {q: engine.neighbors(q) for q in range(60)}
        assert cold == warm

    def test_cache_hit_miss_accounting(self, engine):
        engine.neighbors(3)
        engine.neighbors(3)
        engine.neighbors(4)
        cache = engine.metrics.snapshot()["cache"]
        assert cache["misses"] == 2
        assert cache["hits"] == 1

    def test_cache_eviction_respects_capacity(self, rep):
        small = QueryEngine(rep, cache_size=8)
        for q in range(30):
            small.neighbors(q)
        assert small.cache_len == 8
        # Evicted entries recompute correctly.
        assert set(small.neighbors(0)) == neighbor_query(rep, 0)

    def test_zero_cache_disables_caching(self, rep):
        uncached = QueryEngine(rep, cache_size=0)
        uncached.neighbors(1)
        uncached.neighbors(1)
        assert uncached.cache_len == 0
        assert uncached.metrics.snapshot()["cache"]["hits"] == 0

    def test_degree(self, engine, rep):
        for q in range(0, rep.n, 7):
            assert engine.degree(q) == len(neighbor_query(rep, q))

    def test_out_of_range_rejected(self, engine, rep):
        with pytest.raises(QueryError, match="out of range"):
            engine.neighbors(rep.n)
        with pytest.raises(QueryError):
            engine.neighbors(-1)
        with pytest.raises(QueryError, match="integer"):
            engine.neighbors(True)

    def test_verify_against_helper(self, engine, rep):
        assert all(engine.verify_against(q) for q in range(0, rep.n, 11))


class TestKhop:
    def test_matches_bfs_distances(self, engine, rep):
        index = SummaryNeighborIndex(rep)
        full = bfs_distances(index, 0)
        for k in (0, 1, 2, 3):
            got = engine.khop(0, k)
            want = {v: d for v, d in full.items() if d <= k}
            assert got == want

    def test_negative_k_rejected(self, engine):
        with pytest.raises(QueryError, match="k must be"):
            engine.khop(0, -1)

    def test_deadline_enforced(self, engine):
        with pytest.raises(QueryTimeout):
            engine.khop(0, 5, deadline=time.monotonic() - 1.0)


class TestPageRank:
    def test_scores_match_algorithm7(self, engine, rep):
        expected = pagerank_summary(rep)
        for q in (0, 5, rep.n - 1):
            assert engine.pagerank_score(q) == pytest.approx(expected[q])

    def test_vector_built_once(self, engine):
        engine.pagerank_score(0)
        first = engine._pagerank_scores
        engine.pagerank_score(1)
        assert engine._pagerank_scores is first


class TestQueryDict:
    def test_all_ops_listed(self):
        assert set(OPS) == {
            "neighbors", "degree", "khop", "pagerank", "stats",
            "telemetry", "ping",
        }

    def test_query_response_shape(self, engine, rep):
        response = engine.query({"id": 9, "op": "neighbors", "node": 2})
        assert response["id"] == 9
        assert response["ok"] is True
        assert response["result"] == sorted(neighbor_query(rep, 2))

    def test_unknown_op_rejected(self, engine):
        with pytest.raises(QueryError, match="unknown op"):
            engine.query({"op": "frobnicate"})

    def test_missing_node_rejected(self, engine):
        with pytest.raises(QueryError, match="integer 'node'"):
            engine.query({"op": "degree"})

    def test_stats_includes_cache_occupancy(self, engine):
        engine.neighbors(1)
        result = engine.query({"op": "stats"})["result"]
        assert result["cache"]["size"] == 1
        assert result["cache"]["capacity"] == 64

    def test_stats_includes_registry_snapshot(self, engine):
        engine.query({"op": "neighbors", "node": 2})
        engine.query({"op": "ping"})
        result = engine.query({"op": "stats"})["result"]
        registry = result["registry"]
        requests = {
            entry["labels"]["op"]: entry["value"]
            for entry in registry["service_requests_total"]
        }
        assert requests["neighbors"] == 1
        assert requests["ping"] == 1
        (latency,) = [
            entry
            for entry in registry["service_request_seconds"]
            if entry["labels"]["op"] == "neighbors"
        ]
        assert latency["kind"] == "histogram"
        assert latency["count"] == 1
        import json

        json.dumps(result)  # the stats body must stay JSON-serialisable

    def test_stats_prometheus_format(self, engine):
        engine.query({"op": "neighbors", "node": 2})
        text = engine.query({"op": "stats", "format": "prometheus"})[
            "result"
        ]
        assert isinstance(text, str)
        assert "# TYPE service_requests_total counter" in text
        assert 'service_requests_total{op="neighbors"} 1' in text
        assert "# TYPE service_request_seconds summary" in text

    def test_metrics_registry_backs_legacy_snapshot(self, engine):
        engine.query({"op": "neighbors", "node": 2})
        with pytest.raises(QueryError):
            engine.query({"op": "neighbors", "node": -1})
        snap = engine.metrics.snapshot()
        assert snap["requests_total"] == 2
        assert snap["errors_total"] == 1
        assert snap["errors_by_op"] == {"neighbors": 1}
        registry = engine.metrics.registry
        assert registry.counter(
            "service_requests_total", op="neighbors"
        ).value == 2


class TestQueryMany:
    def test_batch_matches_individual(self, engine, rep):
        requests = [
            {"id": i, "op": "neighbors", "node": i % 20} for i in range(60)
        ]
        responses = engine.query_many(requests)
        assert len(responses) == 60
        for request, response in zip(requests, responses):
            assert response["id"] == request["id"]
            assert response["ok"]
            assert response["result"] == sorted(
                neighbor_query(rep, request["node"])
            )

    def test_batch_deduplicates_expansions(self, rep):
        engine = QueryEngine(rep, cache_size=64)
        requests = [
            {"id": i, "op": "neighbors", "node": i % 5} for i in range(50)
        ]
        engine.query_many(requests)
        cache = engine.metrics.snapshot()["cache"]
        # 5 unique nodes -> exactly 5 expansions despite 50 queries.
        assert cache["misses"] == 5
        batch = engine.metrics.snapshot()["batch"]
        assert batch == {"batches": 1, "queries": 50, "unique_queries": 5}

    def test_batch_mixes_ops(self, engine, rep):
        requests = [
            {"id": 0, "op": "neighbors", "node": 1},
            {"id": 1, "op": "degree", "node": 1},
            {"id": 2, "op": "pagerank", "node": 1},
            {"id": 3, "op": "ping"},
        ]
        responses = engine.query_many(requests)
        assert [r["ok"] for r in responses] == [True] * 4
        assert responses[1]["result"] == len(neighbor_query(rep, 1))

    def test_batch_errors_inline(self, engine, rep):
        requests = [
            {"id": 0, "op": "neighbors", "node": 0},
            {"id": 1, "op": "neighbors", "node": rep.n + 5},
            {"id": 2, "op": "nope"},
            {"id": 3, "op": "degree", "node": 1},
        ]
        responses = engine.query_many(requests)
        assert responses[0]["ok"] and responses[3]["ok"]
        assert not responses[1]["ok"]
        assert responses[1]["error"]["type"] == "bad_request"
        assert not responses[2]["ok"]
        assert responses[2]["id"] == 2


class TestConcurrency:
    def test_parallel_readers_agree_with_oracle(self, engine, rep):
        failures = []

        def hammer(offset):
            try:
                for q in range(offset, rep.n, 4):
                    for _ in range(3):
                        got = set(engine.neighbors(q))
                        if got != neighbor_query(rep, q):
                            failures.append(q)
            except Exception as exc:  # pragma: no cover
                failures.append(repr(exc))

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []


class TestFromFile:
    def test_engine_from_saved_summary(self, tmp_path, rep):
        path = tmp_path / "s.txt.gz"
        save_representation(path, rep)
        engine = QueryEngine.from_file(path, cache_size=16)
        assert engine.representation.n == rep.n
        assert set(engine.neighbors(0)) == neighbor_query(rep, 0)
