"""Tests for MinHash signatures, mh(.), and Super-Jaccard."""

import numpy as np
import pytest

from repro.core.minhash import (
    EMPTY_SENTINEL,
    MERSENNE_PRIME,
    MinHashSignatures,
    exact_jaccard,
    node_hash_values,
    node_signatures,
    super_jaccard,
)
from repro.core.supernodes import SuperNodePartition
from repro.graph.generators import barabasi_albert
from repro.graph.graph import Graph


class TestHashValues:
    def test_shape_and_range(self):
        values = node_hash_values(50, 8, seed=1)
        assert values.shape == (8, 50)
        assert values.max() < MERSENNE_PRIME

    def test_deterministic_per_seed(self):
        assert np.array_equal(
            node_hash_values(30, 4, seed=5), node_hash_values(30, 4, seed=5)
        )
        assert not np.array_equal(
            node_hash_values(30, 4, seed=5), node_hash_values(30, 4, seed=6)
        )

    def test_rows_are_distinct_functions(self):
        values = node_hash_values(100, 4, seed=2)
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(values[i], values[j])

    def test_no_overflow_wraparound(self):
        # With naive uint64 arithmetic, a*x would overflow and collide
        # structurally; the split multiplication must keep values
        # uniform (no duplicate-heavy rows).
        values = node_hash_values(10_000, 2, seed=3)
        assert len(np.unique(values[0])) > 9_900


class TestNodeSignatures:
    def test_twins_share_signatures(self, twin_graph):
        sig = node_signatures(twin_graph, 16, seed=1)
        # Nodes 0 and 1 have identical neighbor sets.
        assert np.array_equal(sig[:, 0], sig[:, 1])

    def test_empty_neighborhood_gets_sentinel(self):
        g = Graph(3, [(0, 1)])
        sig = node_signatures(g, 4, seed=1)
        assert (sig[:, 2] == EMPTY_SENTINEL).all()

    def test_signature_is_min_over_neighbors(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        values = node_hash_values(4, 3, seed=7)
        sig = node_signatures(g, 3, seed=7)
        for i in range(3):
            assert sig[i, 0] == min(values[i, 1], values[i, 2], values[i, 3])

    def test_needs_at_least_one_function(self, triangle):
        with pytest.raises(ValueError):
            node_signatures(triangle, 0, seed=1)

    def test_edgeless_graph(self):
        g = Graph(4, [])
        sig = node_signatures(g, 2, seed=1)
        assert (sig == EMPTY_SENTINEL).all()


class TestMinHashSimilarity:
    def test_identical_neighborhoods_similarity_one(self, twin_graph):
        sig = MinHashSignatures(twin_graph, 24, seed=1)
        assert sig.similarity(0, 1) == pytest.approx(1.0)

    def test_disjoint_neighborhoods_similarity_zero(self):
        g = Graph(6, [(0, 1), (2, 3), (4, 5)])
        sig = MinHashSignatures(g, 24, seed=1)
        assert sig.similarity(0, 2) == pytest.approx(0.0)

    def test_estimator_tracks_exact_jaccard(self):
        g = barabasi_albert(150, 4, seed=3)
        sig = MinHashSignatures(g, 200, seed=4)
        errors = []
        for u, v in [(0, 1), (2, 5), (10, 20), (3, 4), (7, 9)]:
            errors.append(abs(sig.similarity(u, v) - exact_jaccard(g, u, v)))
        assert max(errors) < 0.18  # h=200 -> stderr ~ 0.035

    def test_merge_takes_elementwise_min(self, twin_graph):
        sig = MinHashSignatures(twin_graph, 8, seed=1)
        before_u = sig.column(0).copy()
        before_v = sig.column(2).copy()
        sig.merge(0, 2)
        assert np.array_equal(sig.column(0), np.minimum(before_u, before_v))

    def test_merged_signature_matches_union_neighborhood(self, twin_graph):
        # f_min(w) = min over the union of neighbor sets: merging the
        # signatures must equal hashing the union directly.
        h = 12
        sig = MinHashSignatures(twin_graph, h, seed=5)
        union = set(twin_graph.neighbors(0)) | set(twin_graph.neighbors(4))
        values = node_hash_values(twin_graph.n, h, seed=5)
        expected = values[:, sorted(union)].min(axis=1)
        sig.merge(0, 4)
        assert np.array_equal(sig.column(0), expected)

    def test_value_accessor(self, triangle):
        sig = MinHashSignatures(triangle, 3, seed=1)
        assert sig.value(0, 0) == int(sig.sig[0, 0])


class TestSuperJaccard:
    def test_singletons_reduce_to_plain_jaccard(self, twin_graph):
        p = SuperNodePartition(twin_graph)
        assert super_jaccard(p, 0, 1) == pytest.approx(
            exact_jaccard(twin_graph, 0, 1)
        )

    def test_paper_example2_bias(self):
        """Figure 3: Super-Jaccard prefers the big super-node {f,g,h}
        over the perfect match {a}, while plain Jaccard prefers {a}."""
        # a=0, b=1, c=2, f=5, g=6, h=7 and three target nodes 8, 9, 10.
        # {b,c} and {a} see all three targets (weights 2 and 1);
        # {f,g,h} covers only targets 8 and 9 but with weight 2 each:
        # SJ({b,c},{a}) = 3/6, SJ({b,c},{f,g,h}) = 4/6 — the paper's
        # exact numbers — while J prefers {a} (1 vs 2/3).
        edges = []
        for node in (0, 1, 2):          # a, b, c -> all three targets
            for t in (8, 9, 10):
                edges.append((node, t))
        edges += [(5, 8), (6, 8), (6, 9), (7, 9)]
        g = Graph(11, edges)
        p = SuperNodePartition(g)
        bc = p.merge(1, 2)
        fgh = p.merge(p.merge(5, 6), p.find(7))
        sj_a = super_jaccard(p, bc, 0)
        sj_fgh = super_jaccard(p, bc, fgh)
        assert sj_a == pytest.approx(3 / 6)
        assert sj_fgh == pytest.approx(4 / 6)
        assert sj_fgh > sj_a  # the bias the paper criticises
        assert exact_jaccard(g, 1, 0) == 1.0  # plain Jaccard prefers {a}

    def test_empty_sides(self):
        g = Graph(4, [(0, 1)])
        p = SuperNodePartition(g)
        assert super_jaccard(p, 2, 3) == 0.0

    def test_symmetry(self, community_graph):
        p = SuperNodePartition(community_graph)
        p.merge(0, 10)
        u, v = p.find(0), p.find(1)
        assert super_jaccard(p, u, v) == pytest.approx(
            super_jaccard(p, v, u)
        )


class TestExactJaccard:
    def test_identical(self, twin_graph):
        assert exact_jaccard(twin_graph, 0, 1) == 1.0

    def test_disjoint(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert exact_jaccard(g, 0, 2) == 0.0

    def test_both_empty(self):
        g = Graph(3, [(0, 1)])
        assert exact_jaccard(g, 2, 2) == 0.0


class TestWeightedMinHash:
    def test_signature_length_and_determinism(self, twin_graph):
        from repro.core.minhash import weighted_minhash_signature

        p = SuperNodePartition(twin_graph)
        sig = weighted_minhash_signature(p, 0, 4, seed=9)
        assert len(sig) == 4
        assert sig == weighted_minhash_signature(p, 0, 4, seed=9)
        assert sig != weighted_minhash_signature(p, 0, 4, seed=10)

    def test_identical_weight_vectors_collide(self, twin_graph):
        from repro.core.minhash import weighted_minhash_signature

        p = SuperNodePartition(twin_graph)
        # Twins 0 and 1 have identical neighborhoods, hence identical
        # weight vectors: their signatures must match exactly.
        assert weighted_minhash_signature(
            p, 0, 6, seed=3
        ) == weighted_minhash_signature(p, 1, 6, seed=3)

    def test_disjoint_weight_vectors_rarely_collide(self):
        from repro.core.minhash import weighted_minhash_signature

        g = Graph(6, [(0, 1), (2, 3), (4, 5)])
        p = SuperNodePartition(g)
        a = weighted_minhash_signature(p, 0, 8, seed=3)
        b = weighted_minhash_signature(p, 2, 8, seed=3)
        matches = sum(x == y for x, y in zip(a, b))
        assert matches <= 1

    def test_empty_neighborhood_sentinel(self):
        from repro.core.minhash import weighted_minhash_signature

        g = Graph(3, [(0, 1)])
        p = SuperNodePartition(g)
        assert weighted_minhash_signature(p, 2, 3, seed=1) == (-1, -1, -1)

    def test_collision_rate_tracks_weighted_jaccard(self, twin_graph):
        from repro.core.minhash import weighted_minhash_signature

        p = SuperNodePartition(twin_graph)
        w = p.merge(0, 1)  # weight vector {8: 2, 9: 2}
        other = 2          # weight vector {9: 1, 10: 1}
        k = 200
        a = weighted_minhash_signature(p, w, k, seed=5)
        b = weighted_minhash_signature(p, other, k, seed=5)
        rate = sum(x == y for x, y in zip(a, b)) / k
        # weighted Jaccard = sum(min)/sum(max) = 1/5 = 0.2.
        assert abs(rate - 0.2) < 0.1

    def test_invalid_k(self, twin_graph):
        from repro.core.minhash import weighted_minhash_signature

        p = SuperNodePartition(twin_graph)
        with pytest.raises(ValueError):
            weighted_minhash_signature(p, 0, 0, seed=1)
