"""Tests for the consistent-hash router: bit-identity with a single
server, batch fan-out semantics, and replica failover."""

import random
import threading
import time

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.cluster.manager import start_local_cluster
from repro.cluster.router import RouterEngine, ShardDownError
from repro.cluster.sharder import shard_graph
from repro.cluster.topology import TopologyError, default_spec
from repro.graph.generators import planted_partition
from repro.resilience.retry import RetryPolicy
from repro.service import (
    QueryEngine,
    ServiceError,
    SummaryQueryServer,
    SummaryServiceClient,
)

SEED = 0
SHARDS = 2

#: Keeps failover tests fast: one sweep per request, no backoff.
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02)


def summarize(graph):
    return (
        MagsDMSummarizer(iterations=8, seed=1)
        .summarize(graph)
        .representation
    )


@pytest.fixture(scope="module")
def graph():
    return planted_partition(200, 10, 0.6, 0.03, seed=11)


@pytest.fixture(scope="module")
def full_rep(graph):
    return summarize(graph)


@pytest.fixture(scope="module")
def shard_reps(graph):
    return [summarize(sub) for sub in shard_graph(graph, SHARDS, seed=SEED)]


@pytest.fixture(scope="module")
def single_engine(full_rep):
    return QueryEngine(full_rep, cache_size=1024)


def far_deadline():
    return time.monotonic() + 30.0


@pytest.fixture(scope="module")
def single_client(full_rep):
    """A plain one-server deployment, the wire-level reference."""
    engine = QueryEngine(full_rep, cache_size=1024)
    with SummaryQueryServer(engine, workers=4) as server:
        host, port = server.address
        with SummaryServiceClient(host, port, timeout=30.0) as client:
            yield client


@pytest.fixture(scope="module")
def cluster(shard_reps, graph):
    with start_local_cluster(
        shard_reps,
        replicas=1,
        seed=SEED,
        n=graph.n,
        retry_policy=FAST_RETRY,
    ) as local:
        yield local


@pytest.fixture(scope="module")
def router_client(cluster):
    host, port = cluster.router_address
    with SummaryServiceClient(host, port, timeout=30.0) as client:
        yield client


class TestBitIdentity:
    """Router answers must be indistinguishable from a single server's
    on a randomized corpus (the acceptance bar for the cluster)."""

    def test_neighbors_every_node(
        self, router_client, single_engine, graph
    ):
        for node in range(graph.n):
            want = single_engine.query(
                {"op": "neighbors", "node": node}, far_deadline()
            )["result"]
            assert router_client.neighbors(node) == want

    def test_degree_every_node(self, router_client, single_engine, graph):
        for node in range(graph.n):
            want = single_engine.query(
                {"op": "degree", "node": node}, far_deadline()
            )["result"]
            assert router_client.degree(node) == want

    def test_khop_randomized(self, router_client, single_engine, graph):
        rng = random.Random(99)
        for _ in range(30):
            node = rng.randrange(graph.n)
            k = rng.randrange(0, 5)
            want = single_engine.query(
                {"op": "khop", "node": node, "k": k}, far_deadline()
            )["result"]
            got = router_client.khop(node, k)
            assert got == {int(v): d for v, d in want.items()}

    def test_batch_randomized(self, router_client, single_engine, graph):
        rng = random.Random(5)
        requests = []
        for i in range(200):
            op = rng.choice(["neighbors", "degree", "khop", "ping"])
            request = {"id": f"r{i}", "op": op}
            if op != "ping":
                request["node"] = rng.randrange(graph.n)
            if op == "khop":
                request["k"] = rng.randrange(0, 4)
            requests.append(request)
        want = single_engine.query_many(requests, far_deadline())
        got = router_client.batch(requests)
        assert got == want

    def test_error_messages_identical(
        self, router_client, single_client, graph
    ):
        """Rejections must carry the exact single-server wording."""
        bad = [
            {"op": "neighbors"},                      # missing node
            {"op": "degree", "node": "x"},            # non-int node
            {"op": "neighbors", "node": graph.n},     # out of range
            {"op": "neighbors", "node": -1},          # negative
            {"op": "khop", "node": 0, "k": "x"},      # bad k
            {"op": "khop", "node": 0, "k": -2},       # negative k
        ]
        for request in bad:
            params = {k: v for k, v in request.items() if k != "op"}
            with pytest.raises(ServiceError) as want:
                single_client.request(request["op"], **params)
            with pytest.raises(ServiceError) as got:
                router_client.request(request["op"], **params)
            assert got.value.type == want.value.type
            assert got.value.message == want.value.message

    def test_ping_and_unknown_op(self, router_client, single_client):
        assert router_client.ping() == "pong"
        with pytest.raises(ServiceError) as want:
            single_client.request("frobnicate")
        with pytest.raises(ServiceError) as got:
            router_client.request("frobnicate")
        assert got.value.message == want.value.message

    def test_stats_has_cluster_section(self, router_client):
        stats = router_client.stats()
        agg = stats["cluster"]["aggregate"]
        assert agg["instances_total"] == SHARDS
        assert agg["instances_up"] == SHARDS
        assert len(stats["cluster"]["shards"]) == SHARDS


class TestBatchFanOut:
    """Satellite: router-split batches must preserve the client's
    per-request ordering and ids however sub-batches come back."""

    def test_order_preserved_when_one_shard_is_slow(self, cluster, graph):
        """Delay one shard's sub-batch so it returns after the other;
        the reassembled list must still match input order exactly."""
        engine = cluster.router_engine
        slow = engine._shards[0]
        original = slow.request

        def delayed(op, **params):
            time.sleep(0.05)
            return original(op, **params)

        requests = [
            {"id": i, "op": "degree", "node": node}
            for i, node in enumerate(range(graph.n))
        ]
        slow.request = delayed
        try:
            responses = engine.query_many(requests, far_deadline())
        finally:
            slow.request = original
        assert [r["id"] for r in responses] == list(range(graph.n))
        assert all(r["ok"] for r in responses)

    def test_batch_at_protocol_cap(self, router_client, graph):
        """1024 requests — the protocol maximum — through the router."""
        rng = random.Random(1)
        requests = [
            {"id": i, "op": "degree", "node": rng.randrange(graph.n)}
            for i in range(1024)
        ]
        responses = router_client.batch(requests)
        assert len(responses) == 1024
        assert [r["id"] for r in responses] == list(range(1024))
        assert all(r["ok"] for r in responses)

    def test_oversized_batch_rejected_like_single_server(
        self, router_client
    ):
        requests = [
            {"id": i, "op": "ping"} for i in range(1025)
        ]
        with pytest.raises(ServiceError) as info:
            router_client.batch(requests)
        assert info.value.type == "bad_request"

    def test_sub_batch_chunking_beyond_cap(self, cluster, graph):
        """query_many() called directly (no wire cap) must chunk a
        shard's sub-batch at the protocol limit transparently."""
        engine = cluster.router_engine
        requests = [
            {"id": i, "op": "degree", "node": i % graph.n}
            for i in range(1500)
        ]
        responses = engine.query_many(requests, far_deadline())
        assert len(responses) == 1500
        assert [r["id"] for r in responses] == list(range(1500))
        assert all(r["ok"] for r in responses)

    def test_batch_landing_on_single_shard(self, router_client, graph):
        """A batch whose nodes all hash to one shard takes the
        single-fan-out path and must behave identically."""
        from repro.distributed.partitioning import shard_for_node

        nodes = [
            u for u in range(graph.n)
            if shard_for_node(u, SHARDS, SEED) == 1
        ][:40]
        assert nodes, "corpus has no shard-1 nodes?"
        requests = [
            {"id": f"n{u}", "op": "neighbors", "node": u} for u in nodes
        ]
        responses = router_client.batch(requests)
        assert [r["id"] for r in responses] == [f"n{u}" for u in nodes]
        assert all(r["ok"] for r in responses)

    def test_mixed_validity_batch(self, router_client, single_engine, graph):
        requests = [
            {"id": 0, "op": "degree", "node": 0},
            {"id": 1, "op": "degree", "node": graph.n + 5},
            {"id": 2, "op": "nope"},
            {"id": 3, "op": "degree", "node": 1},
        ]
        want = single_engine.query_many(requests, far_deadline())
        got = router_client.batch(requests)
        assert got == want


class TestRouterEngineDirect:
    def test_requires_planned_spec(self):
        spec = default_spec(2, 1)  # template: no n recorded
        with pytest.raises(TopologyError, match="plan"):
            RouterEngine(spec)

    def test_describe(self, cluster):
        text = cluster.router_engine.describe()
        assert "router" in text
        assert f"{SHARDS} shard(s)" in text

    def test_router_cache_serves_repeats(self, cluster, graph):
        engine = cluster.router_engine
        node = 3
        first = engine.query(
            {"op": "neighbors", "node": node}, far_deadline()
        )
        before = engine.cache_len
        again = engine.query(
            {"op": "neighbors", "node": node}, far_deadline()
        )
        assert first["result"] == again["result"]
        assert engine.cache_len == before


class TestConnectionCap:
    """The replica pool must never open more connections than the
    instance server has workers to serve — persistent pooled
    connections beyond that would starve in the accept queue and
    masquerade as replica death (a 10s timeout, then a false
    ejection)."""

    def test_pool_blocks_at_cap_instead_of_opening_more(
        self, shard_reps, graph
    ):
        import threading

        cluster = start_local_cluster(
            shard_reps, seed=SEED, n=graph.n, workers=2,
            retry_policy=FAST_RETRY,
        )
        try:
            engine = cluster.router_engine
            pool = engine._shards[0].replicas[0]
            assert pool._max == 1  # workers=2 -> cap workers-1

            errors: list[str] = []

            def hammer() -> None:
                try:
                    for _ in range(20):
                        pool.request("ping")
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))

            threads = [
                threading.Thread(target=hammer) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            # Contention made callers wait; it never minted extras.
            assert pool._open <= 1
        finally:
            cluster.close()

    def test_direct_client_not_starved_by_the_pool(
        self, shard_reps, graph
    ):
        """After router traffic saturates the pools, a fresh direct
        connection to an instance must still get served (one worker
        is reserved for exactly this)."""
        cluster = start_local_cluster(
            shard_reps, seed=SEED, n=graph.n, workers=2,
            retry_policy=FAST_RETRY,
        )
        try:
            with SummaryServiceClient(
                *cluster.router_address
            ) as router:
                router.batch([
                    {"id": i, "op": "degree", "node": i % graph.n}
                    for i in range(64)
                ])
            inst = cluster.spec.instances_for(0)[0]
            with SummaryServiceClient(
                *inst.address, timeout=5.0
            ) as direct:
                assert direct.ping() == "pong"
        finally:
            cluster.close()

    def test_closing_pool_releases_waiters(self, shard_reps, graph):
        import threading

        cluster = start_local_cluster(
            shard_reps, seed=SEED, n=graph.n, workers=2,
            retry_policy=FAST_RETRY,
        )
        closed = False
        try:
            engine = cluster.router_engine
            pool = engine._shards[0].replicas[0]
            held = pool._acquire()  # cap is 1: next acquire waits
            outcome: list[str] = []

            def waiter() -> None:
                try:
                    pool._acquire()
                    outcome.append("acquired")
                except ConnectionError:
                    outcome.append("closed")
                except TimeoutError:
                    outcome.append("timeout")

            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.1)
            cluster.close()
            closed = True
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert outcome == ["closed"]
            held.close()
        finally:
            if not closed:
                cluster.close()


class TestFailover:
    """Replica failover: ejection, readmission, and shard-down."""

    def make_cluster(self, shard_reps, graph, **kwargs):
        kwargs.setdefault("retry_policy", FAST_RETRY)
        kwargs.setdefault("breaker_threshold", 2)
        kwargs.setdefault("breaker_reset_s", 0.3)
        return start_local_cluster(
            shard_reps, seed=SEED, n=graph.n, **kwargs
        )

    def test_replica_loss_is_invisible(self, shard_reps, graph):
        """Kill one replica of each shard under traffic: zero
        client-visible errors, failovers recorded."""
        with self.make_cluster(shard_reps, graph, replicas=2) as local:
            host, port = local.router_address
            with SummaryServiceClient(host, port, timeout=30.0) as client:
                for node in range(0, 40):
                    client.degree(node)
                local.kill_instance("shard0/r0")
                local.kill_instance("shard1/r0")
                for node in range(graph.n):
                    assert client.degree(node) >= 0
                registry = (
                    local.router_engine.metrics.registry.snapshot()
                )
                failovers = registry.get("router_failover_total", [])
                assert failovers and sum(
                    row["value"] for row in failovers
                ) >= 1

    def test_dead_replica_is_ejected(self, shard_reps, graph):
        """After breaker_threshold transport failures the breaker
        opens and the replica leaves the rotation."""
        with self.make_cluster(
            shard_reps, graph, replicas=2, breaker_reset_s=60.0
        ) as local:
            engine = local.router_engine
            local.kill_instance("shard0/r0")
            shard0 = engine._shards[0]
            dead = next(
                p for p in shard0.replicas
                if p.instance.label == "shard0/r0"
            )
            # Drive traffic at shard 0 until the breaker trips.
            owned = [
                u for u in range(graph.n)
                if local.spec.owner(u) == 0
            ]
            for u in owned[:10]:
                shard0.request("degree", node=u)
            assert dead.breaker.state == "open"
            registry = engine.metrics.registry.snapshot()
            ejections = [
                row
                for row in registry.get("router_ejections_total", [])
                if row["labels"].get("instance") == "shard0/r0"
            ]
            assert ejections and ejections[0]["value"] >= 1
            # Ejected replicas are skipped: requests keep succeeding.
            for u in owned[10:20]:
                shard0.request("degree", node=u)

    def test_restarted_replica_is_readmitted(self, shard_reps, graph):
        """Half-open probe after breaker_reset_s readmits a replica
        that came back on the same address."""
        with self.make_cluster(
            shard_reps, graph, replicas=2, breaker_reset_s=0.2
        ) as local:
            engine = local.router_engine
            label = "shard0/r0"
            dead_spec = next(
                i for i in local.spec.instances if i.label == label
            )
            local.kill_instance(label)
            shard0 = engine._shards[0]
            owned = [
                u for u in range(graph.n)
                if local.spec.owner(u) == 0
            ]
            for u in owned[:10]:
                shard0.request("degree", node=u)
            pool = next(
                p for p in shard0.replicas
                if p.instance.label == label
            )
            assert pool.breaker.state == "open"

            # Resurrect the instance on its original port.
            revived = SummaryQueryServer(
                QueryEngine(shard_reps[0], cache_size=256),
                host=dead_spec.host,
                port=dead_spec.port,
                workers=2,
            ).start()
            local.servers[label] = revived
            time.sleep(0.25)  # let the reset window elapse
            for u in owned:
                shard0.request("degree", node=u)
            assert pool.breaker.state == "closed"

    def test_whole_shard_down_is_unavailable(self, shard_reps, graph):
        """Single-replica shard dies: owned nodes answer a structured
        'unavailable' error; the other shard keeps serving."""
        with self.make_cluster(shard_reps, graph, replicas=1) as local:
            host, port = local.router_address
            local.kill_instance("shard0/r0")
            down = next(
                u for u in range(graph.n) if local.spec.owner(u) == 0
            )
            alive = next(
                u for u in range(graph.n) if local.spec.owner(u) == 1
            )
            with SummaryServiceClient(host, port, timeout=30.0) as client:
                with pytest.raises(ServiceError) as info:
                    client.neighbors(down)
                assert info.value.type == "unavailable"
                assert "shard 0" in info.value.message
                assert client.degree(alive) >= 0
            registry = local.router_engine.metrics.registry.snapshot()
            assert registry.get("router_shard_down_total")

    def test_khop_degrades_when_shard_down(self, shard_reps, graph):
        """A BFS that crosses a dead shard returns a partial answer
        flagged degraded instead of failing outright."""
        with self.make_cluster(shard_reps, graph, replicas=1) as local:
            host, port = local.router_address
            local.kill_instance("shard0/r0")
            start = next(
                u for u in range(graph.n)
                if local.spec.owner(u) == 1 and graph.degree(u) > 0
            )
            with SummaryServiceClient(host, port, timeout=30.0) as client:
                response = client.request_raw(
                    {"id": 1, "op": "khop", "node": start, "k": 3}
                )
            assert response["ok"]
            assert response.get("degraded") is True
            assert response["result"][str(start)] == 0

    def test_shard_down_error_shape(self):
        exc = ShardDownError(3, 2)
        assert exc.kind == "unavailable"
        assert "shard 3" in str(exc)


class TestPerShardIngestLocks:
    """Router ingest ordering is per shard, not global: batches over
    disjoint shard sets overlap in time, batches sharing a shard
    serialize.  Fake shard pools stand in for the network."""

    class _FakePool:
        def __init__(self, shard, on_request=None):
            self.shard = shard
            self.on_request = on_request
            self.active = 0
            self.max_active = 0
            self._lock = threading.Lock()

        def ingest_request(self, **params):
            with self._lock:
                self.active += 1
                self.max_active = max(self.max_active, self.active)
            try:
                if self.on_request is not None:
                    self.on_request(params)
                return {"applied": len(params["mutations"])}
            finally:
                with self._lock:
                    self.active -= 1

        def close(self):
            pass

    @staticmethod
    def _engine_with_fakes(pools):
        spec = default_spec(2, 1, n=64)
        engine = RouterEngine(spec)
        engine._shards = list(pools)
        return engine

    @staticmethod
    def _node_on(spec, shard, exclude=()):
        for node in range(spec.n):
            if spec.owner(node) == shard and node not in exclude:
                return node
        raise AssertionError(f"no node on shard {shard}")

    def _ingest_in_thread(self, engine, stream, mutations):
        errors = []

        def run():
            try:
                engine.query({
                    "op": "ingest", "stream": stream, "seq": 0,
                    "mutations": mutations,
                })
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        thread = threading.Thread(target=run)
        thread.start()
        return thread, errors

    def test_disjoint_shard_batches_overlap(self):
        entered = [threading.Event(), threading.Event()]

        def rendezvous(me, other):
            def hook(params):
                entered[me].set()
                # Block until the *other* batch is mid-ingest too; a
                # global ingest lock would deadlock here and time out.
                assert entered[other].wait(timeout=5.0), (
                    "batches on disjoint shards did not overlap - "
                    "ingest ordering regressed to a global lock"
                )
            return hook

        pools = [
            self._FakePool(0, on_request=rendezvous(0, 1)),
            self._FakePool(1, on_request=rendezvous(1, 0)),
        ]
        engine = self._engine_with_fakes(pools)
        spec = engine.spec
        a0 = self._node_on(spec, 0)
        a1 = self._node_on(spec, 0, exclude={a0})
        b0 = self._node_on(spec, 1)
        b1 = self._node_on(spec, 1, exclude={b0})
        t0, e0 = self._ingest_in_thread(engine, "a", [["+", a0, a1]])
        t1, e1 = self._ingest_in_thread(engine, "b", [["+", b0, b1]])
        t0.join(timeout=10.0)
        t1.join(timeout=10.0)
        assert not t0.is_alive() and not t1.is_alive()
        assert e0 == [] and e1 == []

    def test_shared_shard_batches_serialize(self):
        pool = self._FakePool(0, on_request=lambda p: time.sleep(0.05))
        pools = [pool, self._FakePool(1)]
        engine = self._engine_with_fakes(pools)
        spec = engine.spec
        nodes = []
        while len(nodes) < 4:
            nodes.append(self._node_on(spec, 0, exclude=set(nodes)))
        threads = []
        for i, (u, v) in enumerate([nodes[:2], nodes[2:]]):
            threads.append(
                self._ingest_in_thread(engine, f"s{i}", [["+", u, v]])
            )
        for thread, errors in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert errors == []
        assert pool.max_active == 1, (
            "two batches touching the same shard ran concurrently"
        )
