"""Tests for BFS / shortest paths / components on the summary."""

import random
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.encoding import encode
from repro.core.supernodes import SuperNodePartition
from repro.graph.generators import caveman, planted_partition
from repro.graph.graph import Graph
from repro.queries.neighbors import SummaryNeighborIndex
from repro.queries.traversal import (
    bfs_distances,
    connected_components,
    num_connected_components,
    shortest_path,
)


def _reference_bfs(graph: Graph, source: int) -> dict[int, int]:
    distances = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in distances:
                distances[v] = distances[u] + 1
                queue.append(v)
    return distances


def _reference_components(graph: Graph) -> list[int]:
    label = [-1] * graph.n
    for start in graph.nodes():
        if label[start] >= 0:
            continue
        queue = deque([start])
        label[start] = start
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if label[v] < 0:
                    label[v] = start
                    queue.append(v)
    return label


def _summarize(graph, algo=MagsDMSummarizer):
    return algo(iterations=10, seed=1).summarize(graph).representation


class TestBfs:
    def test_matches_reference_on_summary(self, community_graph):
        rep = _summarize(community_graph)
        index = SummaryNeighborIndex(rep)
        for source in (0, 7, 42):
            assert bfs_distances(index, source) == _reference_bfs(
                community_graph, source
            )

    def test_unreachable_nodes_absent(self, disconnected_graph):
        rep = _summarize(disconnected_graph)
        index = SummaryNeighborIndex(rep)
        distances = bfs_distances(index, 0)
        assert set(distances) == {0, 1, 2}

    def test_out_of_range(self, triangle):
        index = SummaryNeighborIndex(_summarize(triangle))
        with pytest.raises(IndexError):
            bfs_distances(index, 9)


class TestShortestPath:
    def test_path_is_valid_and_minimal(self, community_graph):
        rep = _summarize(community_graph)
        index = SummaryNeighborIndex(rep)
        reference = _reference_bfs(community_graph, 3)
        rng = random.Random(0)
        targets = rng.sample(sorted(reference), 5)
        for target in targets:
            path = shortest_path(index, 3, target)
            assert path is not None
            assert path[0] == 3 and path[-1] == target
            assert len(path) - 1 == reference[target]
            for a, b in zip(path, path[1:]):
                assert community_graph.has_edge(a, b)

    def test_same_node(self, triangle):
        index = SummaryNeighborIndex(_summarize(triangle))
        assert shortest_path(index, 1, 1) == [1]

    def test_disconnected_returns_none(self, disconnected_graph):
        index = SummaryNeighborIndex(_summarize(disconnected_graph))
        assert shortest_path(index, 0, 4) is None

    def test_out_of_range(self, triangle):
        index = SummaryNeighborIndex(_summarize(triangle))
        with pytest.raises(IndexError):
            shortest_path(index, 0, 42)


class TestConnectedComponents:
    def _assert_matches(self, graph, rep=None):
        rep = rep or _summarize(graph)
        got = connected_components(rep)
        expected = _reference_components(graph)
        # Same partition (labels may differ): compare label classes.
        mapping: dict[int, int] = {}
        for g_label, e_label in zip(got, expected):
            assert mapping.setdefault(g_label, e_label) == e_label
        assert len(set(got)) == len(set(expected))

    def test_two_triangles_and_isolates(self, disconnected_graph):
        self._assert_matches(disconnected_graph)
        assert num_connected_components(
            _summarize(disconnected_graph)
        ) == 4

    def test_connected_community_graph(self, community_graph):
        self._assert_matches(community_graph)

    def test_caveman_ring(self):
        graph = caveman(5, 6, seed=1)
        self._assert_matches(graph)

    def test_singleton_encoding(self, paper_like_graph):
        rep = encode(SuperNodePartition(paper_like_graph))
        self._assert_matches(paper_like_graph, rep)

    def test_removal_isolating_a_member(self):
        """A super-edge whose removals cut one member loose entirely:
        that member must not inherit the super-edge's connectivity."""
        # K_{2,3} minus all edges of node 1: node 1 is isolated.
        g = Graph(5, [(0, 2), (0, 3), (0, 4)])
        partition = SuperNodePartition(g)
        partition.merge(0, 1)
        partition.merge(partition.find(2), partition.find(3))
        partition.merge(partition.find(2), partition.find(4))
        rep = encode(partition)
        self._assert_matches(g, rep)

    def test_split_biclique_components(self):
        """Removals that split a super-edge's survivors into two
        disjoint pairs (the case a naive single-anchor union gets
        wrong)."""
        g = Graph(4, [(0, 2), (1, 3)])
        partition = SuperNodePartition(g)
        partition.merge(0, 1)
        partition.merge(partition.find(2), partition.find(3))
        rep = encode(partition)
        self._assert_matches(g, rep)

    def test_dense_superedge_with_crossing_removals(self):
        """Survivors stay connected through third pairs even when
        every node is touched by some removal."""
        edges = [(0, 2), (0, 3), (1, 2)]  # K_{2,2} minus (1,3)
        g = Graph(4, edges)
        partition = SuperNodePartition(g)
        partition.merge(0, 1)
        partition.merge(partition.find(2), partition.find(3))
        rep = encode(partition)
        self._assert_matches(g, rep)

    def test_on_mags_output(self):
        graph = planted_partition(150, 10, 0.6, 0.01, seed=3)
        rep = _summarize(graph, MagsSummarizer)
        self._assert_matches(graph, rep)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_components_match_reference_on_random_graphs(seed):
    from repro.graph.generators import erdos_renyi

    graph = erdos_renyi(24, 0.09, seed=seed % 200)
    rep = MagsDMSummarizer(iterations=5, seed=1).summarize(graph).representation
    got = connected_components(rep)
    expected = _reference_components(graph)
    mapping: dict[int, int] = {}
    for g_label, e_label in zip(got, expected):
        assert mapping.setdefault(g_label, e_label) == e_label
    assert len(set(got)) == len(set(expected))
