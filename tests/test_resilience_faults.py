"""Tests for the deterministic fault-injection framework."""

from pathlib import Path

import pytest

from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedConnectionDrop,
    InjectedFault,
    active_injector,
    set_injector,
    use_injector,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("site", "explode")

    def test_negative_after_rejected(self):
        with pytest.raises(ValueError, match="after"):
            FaultSpec("site", "crash_before", after=-1)

    def test_zero_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec("site", "crash_before", times=0)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("site", "drop", probability=1.5)

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            assert FaultSpec("site", kind).kind == kind


class TestFaultPlan:
    def test_builders(self):
        plan = (
            FaultPlan()
            .crash("a")
            .crash("b", when="after")
            .delay("c", 0.5)
            .drop("d")
            .corrupt("e")
        )
        assert [s.kind for s in plan.specs] == [
            "crash_before", "crash_after", "delay", "drop", "corrupt",
        ]


class TestFiring:
    def test_crash_before_fires_once(self):
        injector = FaultInjector(FaultPlan().crash("w"))
        with pytest.raises(InjectedFault) as excinfo:
            injector.before("w")
        assert excinfo.value.site == "w"
        injector.before("w")  # spent: second hit passes
        assert injector.fired_count("w") == 1
        assert injector.hits("w") == 2

    def test_after_parameter_spares_early_hits(self):
        injector = FaultInjector(FaultPlan().crash("w", after=2))
        injector.before("w")
        injector.before("w")
        with pytest.raises(InjectedFault):
            injector.before("w")

    def test_crash_after_fires_on_exit_hook(self):
        injector = FaultInjector(FaultPlan().crash("w", when="after"))
        injector.before("w")  # entry hook: nothing scheduled
        with pytest.raises(InjectedFault):
            injector.after("w")

    def test_drop_raises_connection_error(self):
        injector = FaultInjector(FaultPlan().drop("conn"))
        with pytest.raises(InjectedConnectionDrop) as excinfo:
            injector.before("conn")
        assert isinstance(excinfo.value, ConnectionError)

    def test_delay_uses_injected_sleep(self):
        sleeps: list[float] = []
        injector = FaultInjector(
            FaultPlan().delay("s", 0.25), sleep=sleeps.append
        )
        injector.before("s")
        assert sleeps == [0.25]

    def test_unmatched_site_is_untouched(self):
        injector = FaultInjector(FaultPlan().crash("a"))
        injector.before("b")
        injector.after("b")
        assert injector.fired_count() == 0


class TestCorrupt:
    def test_corrupt_changes_payload_deterministically(self):
        data = bytes(range(256)) * 4
        out1 = FaultInjector(FaultPlan().corrupt("c"), seed=3).corrupt(
            "c", data
        )
        out2 = FaultInjector(FaultPlan().corrupt("c"), seed=3).corrupt(
            "c", data
        )
        assert out1 != data
        assert len(out1) == len(data)
        assert out1 == out2

    def test_corrupt_passthrough_when_unarmed(self):
        injector = FaultInjector(FaultPlan())
        data = b"payload"
        assert injector.corrupt("c", data) == data


class TestDeterminism:
    def test_probabilistic_drops_replay_under_seed(self):
        def run(seed: int) -> list[int]:
            plan = FaultPlan().drop("p", times=1000, probability=0.5)
            injector = FaultInjector(plan, seed=seed)
            fired = []
            for i in range(50):
                try:
                    injector.before("p")
                except ConnectionError:
                    fired.append(i)
            return fired

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_fired_log_records_order(self):
        plan = FaultPlan().delay("a", 0.0).crash("b")
        injector = FaultInjector(plan, sleep=lambda s: None)
        injector.before("a")
        with pytest.raises(InjectedFault):
            injector.before("b")
        assert injector.fired == [("a", "delay"), ("b", "crash_before")]


class TestGlobalInjector:
    def test_default_is_none(self):
        assert active_injector() is None

    def test_use_injector_scopes_and_restores(self):
        injector = FaultInjector(FaultPlan())
        with use_injector(injector) as active:
            assert active is injector
            assert active_injector() is injector
        assert active_injector() is None

    def test_set_injector_explicit(self):
        injector = FaultInjector(FaultPlan())
        set_injector(injector)
        try:
            assert active_injector() is injector
        finally:
            set_injector(None)
        assert active_injector() is None

    def test_faults_counted_in_obs_registry(self):
        from repro.obs.metrics import get_registry

        counter = get_registry().counter(
            "repro_resilience_faults_injected_total",
            site="metrics-site", kind="crash_before",
        )
        before = counter.value
        injector = FaultInjector(FaultPlan().crash("metrics-site"))
        with pytest.raises(InjectedFault):
            injector.before("metrics-site")
        assert counter.value == before + 1


def test_algorithm_modules_have_no_resilience_imports():
    """The algorithm layer reaches fault injection only through the
    ``sys.modules`` gate in ``active_fault_injector`` — no module in
    ``repro.algorithms`` may import ``repro.resilience``, so the hot
    loops stay uninstrumented when injection is off.  (The package
    ``__init__`` pulls in ``repro.distributed``, whose coordinator
    legitimately imports resilience for retry/fallback, so this is a
    source-level check on the algorithms subpackage itself.)"""
    algorithms_dir = Path(SRC) / "repro" / "algorithms"
    offenders = [
        source.name
        for source in sorted(algorithms_dir.glob("*.py"))
        if "from repro.resilience" in source.read_text()
        or "import repro.resilience" in source.read_text()
    ]
    assert offenders == []


def test_gate_resolves_injector_without_algorithm_imports():
    """``active_fault_injector`` must see the global injector installed
    via :func:`use_injector` — and fall back to ``None`` the moment it
    is cleared — purely through ``sys.modules``."""
    from repro.algorithms.base import active_fault_injector

    injector = FaultInjector(FaultPlan())
    with use_injector(injector):
        assert active_fault_injector() is injector
    assert active_fault_injector() is None
