"""Two-process trace propagation: a traced parent process fans out to
a real ``repro serve --trace-dir`` subprocess; the reassembled tree
must have a single root with the subprocess span correctly parented."""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core.encoding import encode
from repro.core.supernodes import SuperNodePartition
from repro.core.serialization import save_representation
from repro.graph import generators
from repro.obs.collect import assemble_trace, read_trace_dir
from repro.obs.exporters import SpanSink
from repro.obs.schema import validate_trace
from repro.obs.tracer import set_instance_label
from repro.service import SummaryServiceClient

SRC = str(Path(__file__).resolve().parent.parent / "src")
STARTUP_TIMEOUT_S = 30


@pytest.fixture(autouse=True)
def restore_global_tracer():
    previous = set_instance_label("")
    yield
    obs.stop_tracing()
    set_instance_label(previous)


def _wait_for_port(proc: subprocess.Popen) -> int:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError("server exited before binding a port")
        match = re.match(r"serving on \S+:(\d+)", line)
        if match:
            return int(match.group(1))
    raise AssertionError("server did not report its port in time")


def test_two_process_trace_reassembles_to_single_root(tmp_path):
    graph = generators.planted_partition(60, 4, 0.5, 0.05, seed=0)
    artifact = tmp_path / "summary.txt.gz"
    save_representation(artifact, encode(SuperNodePartition(graph)))
    trace_dir = tmp_path / "spans"

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC, env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(artifact),
            "--port", "0", "--log-interval", "0",
            "--trace-dir", str(trace_dir),
            "--instance-label", "worker",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        port = _wait_for_port(proc)

        set_instance_label("parent")
        sink = SpanSink(trace_dir, "parent")
        tracer = obs.start_tracing(sink=sink.write)
        try:
            with tracer.span("router:fanout", op="khop", shard=0) as fan:
                trace_id, fan_span = fan.trace_id, fan.span_id
                with SummaryServiceClient("127.0.0.1", port) as client:
                    result = client.request(
                        "khop", node=0, k=1,
                        trace={"id": trace_id, "span": fan_span},
                    )
            assert result  # the query itself worked
        finally:
            obs.stop_tracing()
            sink.close()

        proc.send_signal(signal.SIGINT)
        output, _ = proc.communicate(timeout=15)
    except BaseException:
        proc.kill()
        proc.communicate()
        raise
    assert proc.returncode == 0, output

    records = read_trace_dir(trace_dir)
    merged = assemble_trace(records, trace_id)
    assert len(merged.records) == 2

    # Exactly one root — the parent's fan-out span — with the
    # subprocess's request span parented directly under it.
    assert [r["span"] for r in merged.roots] == [fan_span]
    assert merged.instances == ["parent", "worker"]
    (child,) = [r for r in merged.records if r["instance"] == "worker"]
    assert child["name"] == "service:request"
    assert child["parent"] == fan_span
    assert child["pid"] == proc.pid
    assert child["pid"] != os.getpid()

    # The merged cross-process trace is schema-valid as one tree.
    assert validate_trace(merged.records) == []


def test_per_instance_file_validates_with_relaxed_parentage(tmp_path):
    """A single instance's file contains spans whose parents live in
    another process; the v2 validator must accept it when told the
    file is a shard-local fragment."""
    sink = SpanSink(tmp_path, "fragment")
    tracer = obs.Tracer(sink=sink.write)
    from repro.obs.context import TraceContext

    context = TraceContext(trace_id="t" * 8, parent_span_id="f" * 16)
    with tracer.span("service:request", context=context, op="ping"):
        pass
    context2 = TraceContext(trace_id="u" * 8, parent_span_id="e" * 16)
    with tracer.span("service:request", context=context2, op="ping"):
        pass
    sink.close()

    records = read_trace_dir(tmp_path)
    assert len(records) == 2
    assert validate_trace(records, require_single_trace=False) == []
    # The strict mode still flags the dangling parents / mixed traces.
    assert validate_trace(records) != []
