"""Wire-protocol hardening tests: schema validation on both halves.

Covers the request validator (field whitelists, type checks, k and
batch caps), the response validator the client applies to everything
a server sends back, the client-side frame cap against hostile
servers, and socket-level adversarial frames against a live server
(structured error, echoed id, connection survival).
"""

import json
import socket
import threading

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.service import (
    QueryEngine,
    SummaryQueryServer,
    SummaryServiceClient,
)
from repro.service.protocol import (
    MAX_BATCH_REQUESTS,
    MAX_KHOP_K,
    MAX_LINE_BYTES,
    LineReader,
    ProtocolError,
    validate_request,
    validate_response,
)


@pytest.fixture(scope="module")
def rep():
    from repro.graph import generators

    graph = generators.planted_partition(120, 8, 0.7, 0.02, seed=7)
    return (
        MagsDMSummarizer(iterations=6, seed=1)
        .summarize(graph)
        .representation
    )


@pytest.fixture
def server(rep):
    engine = QueryEngine(rep, cache_size=128)
    with SummaryQueryServer(engine, workers=4, request_timeout=5.0) as srv:
        yield srv


def _raw_exchange(server, payload: bytes) -> dict:
    """Send raw bytes on a fresh socket, return the first response."""
    host, port = server.address
    with socket.create_connection((host, port), timeout=5.0) as sock:
        sock.settimeout(5.0)
        sock.sendall(payload)
        buffer = b""
        while b"\n" not in buffer:
            chunk = sock.recv(65536)
            assert chunk, "server closed without a structured response"
            buffer += chunk
        return json.loads(buffer.split(b"\n", 1)[0])


class TestValidateRequest:
    def test_accepts_every_documented_op(self):
        for request in (
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "neighbors", "node": 5},
            {"id": 3, "op": "degree", "node": 0},
            {"id": 4, "op": "khop", "node": 1, "k": MAX_KHOP_K},
            {"id": 5, "op": "pagerank", "node": 2},
            {"id": 6, "op": "stats"},
            {"id": 7, "op": "stats", "format": "prometheus"},
            {"id": 8, "op": "batch", "requests": [{"op": "ping"}]},
            {"op": "shutdown"},
        ):
            assert validate_request(request) is request

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"id": 1, "op": "eval"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="does not accept field"):
            validate_request({"id": 1, "op": "ping", "payload": "x"})

    def test_non_scalar_id_rejected(self):
        with pytest.raises(ProtocolError, match="scalar"):
            validate_request({"id": [1], "op": "ping"})

    def test_non_integer_node_rejected(self):
        for node in ("5", 1.5, None, True):
            with pytest.raises(ProtocolError):
                validate_request({"id": 1, "op": "degree", "node": node})

    def test_k_range_enforced(self):
        base = {"id": 1, "op": "khop", "node": 0}
        with pytest.raises(ProtocolError):
            validate_request({**base, "k": MAX_KHOP_K + 1})
        with pytest.raises(ProtocolError):
            validate_request({**base, "k": -1})
        validate_request({**base, "k": 0})

    def test_batch_cap_enforced(self):
        over = [{"op": "ping"}] * (MAX_BATCH_REQUESTS + 1)
        with pytest.raises(ProtocolError, match="exceeds the cap"):
            validate_request({"id": 1, "op": "batch", "requests": over})

    def test_batch_elements_must_be_objects(self):
        with pytest.raises(ProtocolError, match="not a JSON object"):
            validate_request(
                {"id": 1, "op": "batch", "requests": [{"op": "ping"}, 42]}
            )


class TestValidateResponse:
    def test_well_formed_responses_pass(self):
        ok = {"id": 1, "ok": True, "op": "ping", "result": "pong"}
        err = {
            "id": 2,
            "ok": False,
            "error": {"type": "bad_request", "message": "no"},
        }
        assert validate_response(ok) is ok
        assert validate_response(err) is err

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError):
            validate_response(
                {"id": 1, "ok": True, "result": 1, "sneaky": 2}
            )

    def test_ok_without_result_rejected(self):
        with pytest.raises(ProtocolError):
            validate_response({"id": 1, "ok": True})

    def test_error_must_be_structured(self):
        with pytest.raises(ProtocolError):
            validate_response({"id": 1, "ok": False, "error": "boom"})
        with pytest.raises(ProtocolError):
            validate_response({"id": 1, "ok": False, "error": {"type": 5}})


class TestServerSchemaErrors:
    def test_unknown_field_answered_with_echoed_id(self, server):
        response = _raw_exchange(
            server,
            json.dumps({"id": 99, "op": "ping", "bogus": 1}).encode()
            + b"\n",
        )
        assert response["ok"] is False
        assert response["id"] == 99
        assert response["error"]["type"] == "bad_request"

    def test_unechoable_id_not_reflected(self, server):
        response = _raw_exchange(
            server,
            json.dumps({"id": {"x": 1}, "op": "ping"}).encode() + b"\n",
        )
        assert response["ok"] is False
        assert response["id"] is None

    def test_huge_k_rejected_before_traversal(self, server):
        response = _raw_exchange(
            server,
            json.dumps(
                {"id": 1, "op": "khop", "node": 0, "k": 10**9}
            ).encode()
            + b"\n",
        )
        assert response["ok"] is False
        assert response["error"]["type"] == "bad_request"

    def test_schema_rejections_counted(self, server):
        before = _count_rejected(server, "schema")
        _raw_exchange(
            server, json.dumps({"id": 1, "op": "nope"}).encode() + b"\n"
        )
        assert _count_rejected(server, "schema") == before + 1

    def test_frame_rejections_counted(self, server):
        before = _count_rejected(server, "frame")
        _raw_exchange(server, b"not json at all\n")
        assert _count_rejected(server, "frame") == before + 1

    def test_connection_survives_schema_error(self, server):
        host, port = server.address
        with SummaryServiceClient(host, port) as client:
            # A schema-invalid request raises but echoes our id, so
            # the stream stays pairable and usable.
            with pytest.raises(Exception):
                client.request("khop", node=0, k=10**9)
            assert client.ping() == "pong"


def _count_rejected(server, reason: str) -> int:
    for labels, metric in server.metrics.registry.family(
        "service_protocol_rejected_total"
    ):
        if labels.get("reason") == reason:
            return int(metric.value)
    return 0


class TestClientFrameCap:
    def test_hostile_server_cannot_balloon_client(self):
        """A server streaming an endless unterminated line must cost
        the client at most ``max_line_bytes`` of buffering."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        stop = threading.Event()

        def hostile():
            conn, _addr = listener.accept()
            conn.recv(65536)  # swallow the request
            junk = b"z" * 65536
            try:
                while not stop.is_set():
                    conn.send(junk)
            except OSError:
                pass  # client hung up, as it should
            finally:
                conn.close()

        thread = threading.Thread(target=hostile, daemon=True)
        thread.start()
        try:
            client = SummaryServiceClient(
                host, port, timeout=5.0, max_line_bytes=1 << 16
            )
            with pytest.raises(ProtocolError, match="exceeds"):
                client.ping()
            # The stream is untrustworthy now: fail fast, do not retry.
            assert not client.usable
            with pytest.raises(ConnectionError):
                client.ping()
            client.close()
        finally:
            stop.set()
            listener.close()
            thread.join(timeout=5.0)

    def test_reader_cap_is_parametrized(self):
        a, b = socket.socketpair()
        try:
            reader = LineReader(a, max_line_bytes=8)
            b.sendall(b"0123456789abcdef")  # 16 bytes, no newline
            with pytest.raises(ProtocolError, match="exceeds"):
                reader.readline()
        finally:
            a.close()
            b.close()

    def test_default_cap_matches_protocol_constant(self):
        a, b = socket.socketpair()
        try:
            assert LineReader(a)._max_line_bytes == MAX_LINE_BYTES
        finally:
            a.close()
            b.close()

    def test_schema_invalid_response_marks_client_unusable(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def liar():
            conn, _addr = listener.accept()
            conn.recv(65536)
            # Decodes fine but violates the response schema.
            conn.sendall(b'{"id": 1, "ok": true}\n')
            conn.close()

        thread = threading.Thread(target=liar, daemon=True)
        thread.start()
        try:
            client = SummaryServiceClient(host, port, timeout=5.0)
            with pytest.raises(ProtocolError):
                client.ping()
            assert not client.usable
            client.close()
        finally:
            listener.close()
            thread.join(timeout=5.0)
