"""Tests for edge-list I/O and cleaning (Section 6.1 normalisation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph, GraphError
from repro.graph.io import (
    clean_edges,
    load_graph,
    read_declared_node_count,
    read_edge_list,
    save_graph,
    write_edge_list,
)


class TestCleanEdges:
    def test_removes_self_loops(self):
        n, edges = clean_edges([(1, 1), (1, 2)])
        assert n == 2
        assert edges == [(0, 1)]

    def test_collapses_directions(self):
        n, edges = clean_edges([(3, 7), (7, 3)])
        assert n == 2
        assert edges == [(0, 1)]

    def test_removes_duplicates(self):
        n, edges = clean_edges([(0, 1), (0, 1), (1, 0)])
        assert edges == [(0, 1)]

    def test_relabels_to_dense_range(self):
        n, edges = clean_edges([(100, 200), (200, 300)])
        assert n == 3
        assert edges == [(0, 1), (1, 2)]

    def test_relabel_by_sorted_original_id(self):
        n, edges = clean_edges([(9, 5), (5, 2)])
        # 2 -> 0, 5 -> 1, 9 -> 2
        assert edges == [(1, 2), (0, 1)]

    def test_dense_labeling_is_preserved(self):
        n, edges = clean_edges([(0, 2), (1, 2)])
        assert (n, edges) == (3, [(0, 2), (1, 2)])

    def test_empty_input(self):
        assert clean_edges([]) == (0, [])

    def test_only_self_loops(self):
        assert clean_edges([(4, 4), (4, 4)]) == (0, [])

    def test_edges_are_min_max_ordered(self):
        __, edges = clean_edges([(5, 1), (2, 8), (8, 3)])
        assert all(u < v for u, v in edges)


class TestFileRoundtrip:
    def test_write_read_roundtrip(self, tmp_path, paper_like_graph):
        path = tmp_path / "graph.txt"
        save_graph(path, paper_like_graph)
        loaded = load_graph(path)
        assert loaded == paper_like_graph

    def test_gzip_roundtrip(self, tmp_path, community_graph):
        path = tmp_path / "graph.txt.gz"
        save_graph(path, community_graph)
        assert load_graph(path) == community_graph

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text(
            "# SNAP comment\n% rep comment\n\n0 1\n1 2 999\n"
        )
        assert list(read_edge_list(path)) == [(0, 1), (1, 2)]

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "weighted.txt"
        path.write_text("0 1 0.5\n1 2 0.25\n")
        assert list(read_edge_list(path)) == [(0, 1), (1, 2)]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("42\n")
        with pytest.raises(ValueError, match="malformed"):
            list(read_edge_list(path))

    def test_load_graph_cleans(self, tmp_path):
        path = tmp_path / "dirty.txt"
        path.write_text("5 5\n5 6\n6 5\n")
        g = load_graph(path)
        assert g.n == 2
        assert g.m == 1

    def test_write_edge_list_format(self, tmp_path):
        path = tmp_path / "out.txt"
        write_edge_list(path, [(0, 1), (2, 3)])
        assert path.read_text() == "0 1\n2 3\n"

    def test_save_graph_is_deterministic(self, tmp_path, community_graph):
        p1, p2 = tmp_path / "a.txt", tmp_path / "b.txt"
        save_graph(p1, community_graph)
        save_graph(p2, community_graph)
        assert p1.read_text() == p2.read_text()

    def test_isolated_nodes_survive_roundtrip(self, tmp_path):
        # Edge lines alone cannot represent isolated nodes; the
        # `# n=<count>` header save_graph writes fixes that.
        g = Graph(4, [(0, 1)])
        path = tmp_path / "iso.txt"
        save_graph(path, g)
        assert load_graph(path) == g

    def test_labels_stay_stable_with_header(self, tmp_path):
        # Without the header, clean_edges would relabel 2 -> 0, 3 -> 1.
        g = Graph(5, [(2, 3)])
        path = tmp_path / "stable.txt"
        save_graph(path, g)
        loaded = load_graph(path)
        assert loaded.n == 5
        assert sorted(loaded.edges()) == [(2, 3)]


class TestNodeCountHeader:
    def test_header_written_and_read(self, tmp_path):
        path = tmp_path / "hdr.txt"
        write_edge_list(path, [(0, 1)], n=7)
        assert path.read_text().startswith("# n=7\n")
        assert read_declared_node_count(path) == 7

    def test_header_absent(self, tmp_path):
        path = tmp_path / "plain.txt"
        write_edge_list(path, [(0, 1)])
        assert read_declared_node_count(path) is None

    def test_header_after_other_comments(self, tmp_path):
        path = tmp_path / "mixed.txt"
        path.write_text("# SNAP-ish preamble\n\n# n=3\n0 1\n")
        assert read_declared_node_count(path) == 3

    def test_header_not_read_past_edge_data(self, tmp_path):
        path = tmp_path / "late.txt"
        path.write_text("0 1\n# n=9\n")
        assert read_declared_node_count(path) is None

    def test_negative_count_rejected(self, tmp_path):
        path = tmp_path / "neg.txt"
        path.write_text("# n=-1\n0 1\n")
        with pytest.raises(ValueError, match="negative"):
            read_declared_node_count(path)

    def test_header_skipped_by_read_edge_list(self, tmp_path):
        path = tmp_path / "skip.txt"
        write_edge_list(path, [(0, 1), (1, 2)], n=3)
        assert list(read_edge_list(path)) == [(0, 1), (1, 2)]

    def test_load_graph_dedupes_but_keeps_labels(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("# n=6\n4 2\n2 4\n3 3\n")
        g = load_graph(path)
        assert g.n == 6
        assert sorted(g.edges()) == [(2, 4)]

    def test_out_of_range_edge_rejected(self, tmp_path):
        path = tmp_path / "oob.txt"
        path.write_text("# n=2\n0 5\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_fully_isolated_graph_roundtrip(self, tmp_path):
        g = Graph(3, [])
        path = tmp_path / "edgeless.txt"
        save_graph(path, g)
        assert load_graph(path) == g

    def test_gzip_header_roundtrip(self, tmp_path):
        g = Graph(6, [(0, 5)])
        path = tmp_path / "iso.txt.gz"
        save_graph(path, g)
        assert load_graph(path) == g


@st.composite
def graphs(draw):
    """Arbitrary small graphs, biased toward having isolated nodes."""
    n = draw(st.integers(min_value=0, max_value=12))
    if n < 2:
        return Graph(n, [])
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=20))
    return Graph(n, edges)


class TestRoundtripProperty:
    @settings(max_examples=60, deadline=None)
    @given(graph=graphs(), gz=st.booleans())
    def test_save_load_is_identity(self, graph, gz, tmp_path_factory):
        path = tmp_path_factory.mktemp("rt") / (
            "g.txt.gz" if gz else "g.txt"
        )
        save_graph(path, graph)
        loaded = load_graph(path)
        assert loaded == graph
        assert loaded.n == graph.n
        assert sorted(loaded.edges()) == sorted(graph.edges())
