"""Tests for graph statistics helpers."""

import pytest

from repro.graph.graph import Graph
from repro.graph.stats import degree_histogram, graph_stats


class TestGraphStats:
    def test_star(self, star_graph):
        stats = graph_stats(star_graph)
        assert stats.n == 10
        assert stats.m == 9
        assert stats.max_degree == 9
        assert stats.min_degree == 1
        assert stats.median_degree == 1.0
        assert stats.isolated_nodes == 0

    def test_empty_graph(self):
        stats = graph_stats(Graph(0, []))
        assert stats.n == 0
        assert stats.avg_degree == 0.0

    def test_isolated_nodes_counted(self):
        stats = graph_stats(Graph(5, [(0, 1)]))
        assert stats.isolated_nodes == 3
        assert stats.min_degree == 0

    def test_avg_degree(self, triangle):
        assert graph_stats(triangle).avg_degree == pytest.approx(2.0)

    def test_as_row_keys(self, triangle):
        row = graph_stats(triangle).as_row()
        assert {"n", "m", "d_avg", "d_max", "d_min"} <= set(row)
        assert row["n"] == 3


class TestDegreeHistogram:
    def test_star(self, star_graph):
        histogram = degree_histogram(star_graph)
        assert histogram == {9: 1, 1: 9}

    def test_regular_graph(self, triangle):
        assert degree_histogram(triangle) == {2: 3}

    def test_total_counts(self, community_graph):
        histogram = degree_histogram(community_graph)
        assert sum(histogram.values()) == community_graph.n
        total_degree = sum(d * c for d, c in histogram.items())
        assert total_degree == 2 * community_graph.m


class TestDuplicationProfile:
    def test_twin_graph_profile(self, twin_graph):
        from repro.graph.stats import duplication_profile

        profile = duplication_profile(twin_graph)
        # Eight leaf nodes form four twin pairs.
        assert profile["twin_fraction"] >= 8 / 12 - 1e-9
        assert profile["largest_class"] >= 2

    def test_path_has_some_twins(self, path_graph):
        from repro.graph.stats import duplication_profile

        # In P6, nodes 0 and 2 share {1}; ends pair with inner nodes.
        profile = duplication_profile(path_graph)
        assert 0.0 <= profile["twin_fraction"] <= 1.0

    def test_web_analog_duplication_exceeds_social(self):
        from repro.graph.datasets import load_dataset
        from repro.graph.stats import duplication_profile

        web = duplication_profile(load_dataset("CN"))
        social = duplication_profile(load_dataset("SL"))
        assert web["twin_fraction"] > social["twin_fraction"]

    def test_empty_graph(self):
        from repro.graph.stats import duplication_profile

        profile = duplication_profile(Graph(0, []))
        assert profile["twin_fraction"] == 0.0
