"""Cross-cutting contract tests every summarizer must satisfy.

For every algorithm and every structured test graph: the output is
lossless, the cost accounting is consistent, the run is deterministic
per seed, and the summary is never larger than the trivial encoding.
"""

import pytest

from repro.algorithms import (
    GreedySummarizer,
    LDMESummarizer,
    MagsDMSummarizer,
    MagsSummarizer,
    RandomizedSummarizer,
    SluggerSummarizer,
    SWeGSummarizer,
)
from repro.core.verify import verify_lossless

from tests.conftest import all_test_graphs

ALGORITHMS = {
    "greedy": lambda: GreedySummarizer(),
    "randomized": lambda: RandomizedSummarizer(seed=3),
    "sweg": lambda: SWeGSummarizer(iterations=8, seed=3),
    "ldme": lambda: LDMESummarizer(iterations=8, signature_length=2, seed=3),
    "slugger": lambda: SluggerSummarizer(iterations=8, seed=3),
    "mags": lambda: MagsSummarizer(iterations=8, seed=3),
    "mags_dm": lambda: MagsDMSummarizer(iterations=8, seed=3),
}

GRAPHS = all_test_graphs()


@pytest.mark.parametrize("algo_name", ALGORITHMS)
@pytest.mark.parametrize("graph_name,graph", GRAPHS, ids=[g[0] for g in GRAPHS])
class TestSummarizerContract:
    def test_lossless_and_consistent(self, algo_name, graph_name, graph):
        result = ALGORITHMS[algo_name]().summarize(graph)
        rep = result.representation
        verify_lossless(graph, rep)
        assert rep.cost == len(rep.summary_edges) + rep.num_corrections
        assert result.cost == rep.cost
        if graph.m:
            assert result.relative_size <= 1.0 + 1e-9
        assert result.runtime_seconds >= 0.0
        assert result.algorithm
        assert result.num_merges == graph.n - rep.num_supernodes


@pytest.mark.parametrize("algo_name", ALGORITHMS)
def test_deterministic_per_seed(algo_name, community_graph):
    a = ALGORITHMS[algo_name]().summarize(community_graph)
    b = ALGORITHMS[algo_name]().summarize(community_graph)
    assert a.cost == b.cost
    assert a.representation.summary_edges == b.representation.summary_edges
    assert a.representation.additions == b.representation.additions


@pytest.mark.parametrize("algo_name", ALGORITHMS)
def test_result_metadata(algo_name, twin_graph):
    result = ALGORITHMS[algo_name]().summarize(twin_graph)
    assert "seed" in result.params
    assert isinstance(result.phase_seconds, dict)
    assert result.summary_line().startswith(result.algorithm)


@pytest.mark.parametrize("algo_name", ALGORITHMS)
def test_twins_get_merged(algo_name, twin_graph):
    """Every algorithm must find at least some of the twin merges —
    they have the maximum possible saving (0.5)."""
    result = ALGORITHMS[algo_name]().summarize(twin_graph)
    assert result.num_merges >= 2
    assert result.relative_size < 1.0
