"""Tests of the batched cost kernels and the differential harness.

The contract under test (see ``docs/performance.md``): every fast
path in :class:`SuperNodePartition` — the cached scalar methods and
the batched NumPy kernel ``savings_many`` — returns values that are
``==`` (bit-identical, not approximately equal) to the pure-Python
oracle in :mod:`repro.core.reference`, for any reachable partition
state; and swapping the kernel in or out via ``FAST_KERNELS`` never
changes a summarizer's output.
"""

import sys
from pathlib import Path

import pytest

from repro.algorithms.greedy import GreedySummarizer
from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core import reference, supernodes
from repro.core.supernodes import SuperNodePartition
from repro.graph.generators import (
    caveman,
    erdos_renyi,
    planted_partition,
)

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))
import diff_fuzz  # noqa: E402


@pytest.fixture
def merged_partition():
    graph = planted_partition(48, 6, 0.7, 0.05, seed=3)
    partition = SuperNodePartition(graph)
    for u in range(0, 16, 2):
        partition.merge(partition.find(u), partition.find(u + 1))
    return partition


@pytest.fixture
def scalar_only():
    """Force the scalar fallback for the duration of a test."""
    supernodes.FAST_KERNELS = False
    try:
        yield
    finally:
        supernodes.FAST_KERNELS = True


def _candidate_pairs(partition):
    """All 2-hop pairs, grouped by first endpoint."""
    pairs = []
    for u in sorted(partition.roots()):
        two_hop = set()
        for x in partition.weights(u):
            two_hop.update(partition.weights(x))
        two_hop.discard(u)
        pairs.extend((u, v) for v in sorted(two_hop))
    return pairs


class TestSavingsMany:
    def test_empty(self, merged_partition):
        assert merged_partition.savings_many([]) == []

    def test_order_preserved(self, merged_partition):
        pairs = _candidate_pairs(merged_partition)[:20]
        pairs = pairs[::-1]  # deliberately not grouped/sorted
        batch = merged_partition.savings_many(pairs)
        assert batch == [
            merged_partition.saving(u, v) for u, v in pairs
        ]

    def test_matches_scalar_everywhere(self, merged_partition):
        pairs = _candidate_pairs(merged_partition)
        batch = merged_partition.savings_many(pairs)
        scalar = [merged_partition.saving(u, v) for u, v in pairs]
        assert batch == scalar

    def test_matches_reference_bit_identical(self, merged_partition):
        pairs = _candidate_pairs(merged_partition)
        batch = merged_partition.savings_many(pairs)
        oracle = reference.savings_many(merged_partition, pairs)
        assert batch == oracle  # ==, never pytest.approx

    def test_disconnected_pair(self, merged_partition):
        roots = sorted(merged_partition.roots())
        u = roots[0]
        far = [v for v in roots if v not in merged_partition.weights(u)]
        far = [
            v
            for v in far
            if not any(
                v in merged_partition.weights(x)
                for x in merged_partition.weights(u)
            )
        ][:3]
        if not far:
            pytest.skip("graph too dense for a disconnected pair")
        pairs = [(u, v) for v in far]
        assert merged_partition.savings_many(pairs) == [
            reference.saving(merged_partition, u, v) for v in far
        ]

    def test_self_pair_rejected(self, merged_partition):
        u = next(iter(merged_partition.roots()))
        with pytest.raises(ValueError):
            merged_partition.savings_many([(u, u)])

    def test_scalar_fallback_path(self, merged_partition, scalar_only):
        pairs = _candidate_pairs(merged_partition)[:16]
        assert merged_partition.savings_many(
            pairs
        ) == reference.savings_many(merged_partition, pairs)

    def test_repeated_pairs_and_mixed_groups(self, merged_partition):
        pairs = _candidate_pairs(merged_partition)[:6]
        weird = pairs + pairs[::-1] + [pairs[0]] * 3
        assert merged_partition.savings_many(
            weird
        ) == reference.savings_many(merged_partition, weird)


class TestDifferentialAfterMerges:
    @pytest.mark.parametrize(
        "graph",
        [
            erdos_renyi(40, 0.12, seed=11),
            caveman(5, 6, seed=1),
            planted_partition(42, 7, 0.7, 0.03, seed=9),
        ],
        ids=["erdos_renyi", "caveman", "planted"],
    )
    def test_total_cost_and_savings_track_reference(self, graph):
        partition = SuperNodePartition(graph)
        for step in range(10):
            pairs = _candidate_pairs(partition)
            if not pairs:
                break
            assert partition.savings_many(
                pairs
            ) == reference.savings_many(partition, pairs)
            u, v = pairs[step % len(pairs)]
            partition.merge(u, v)
            partition.check_invariants()
            assert partition.total_cost() == reference.total_cost(
                partition
            )


class TestKernelSwapBitIdentity:
    """Summaries must be identical with the kernel on or off."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: MagsSummarizer(iterations=8),
            lambda: MagsSummarizer(iterations=8, candidate_method="naive"),
            lambda: GreedySummarizer(),
            lambda: MagsDMSummarizer(iterations=8),
        ],
        ids=["mags_minhash", "mags_naive", "greedy", "mags_dm"],
    )
    def test_summary_identical_across_kernel_swap(self, make):
        graph = planted_partition(60, 6, 0.65, 0.04, seed=13)
        fast = make().summarize(graph).representation
        supernodes.FAST_KERNELS = False
        try:
            slow = make().summarize(graph).representation
        finally:
            supernodes.FAST_KERNELS = True
        assert fast.supernodes == slow.supernodes
        assert fast.summary_edges == slow.summary_edges
        assert fast.additions == slow.additions
        assert fast.removals == slow.removals


class TestDiffFuzzSmoke:
    def test_a_few_seeds_pass(self):
        comparisons = diff_fuzz.run(3)
        assert comparisons > 0

    def test_cli_reports_clean_run(self, capsys):
        assert diff_fuzz.main(["--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 mismatches" in out
