"""Property-based tests: the serving engine is exactly Algorithm 6.

For arbitrary random graphs summarized by Mags and Mags-DM, every way
of asking the :class:`~repro.service.engine.QueryEngine` for a
neighborhood — cold cache, warm cache, and batched — must agree with
the one-shot :func:`~repro.queries.neighbors.neighbor_query` oracle
on every node.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.graph.graph import Graph
from repro.queries.neighbors import neighbor_query
from repro.service.engine import QueryEngine

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_nodes: int = 20, max_edges: int = 40) -> Graph:
    """Arbitrary simple undirected graphs (possibly disconnected)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    count = draw(st.integers(0, min(len(possible), max_edges)))
    indices = draw(
        st.lists(
            st.integers(0, len(possible) - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    return Graph(n, [possible[i] for i in indices])


def _engines(graph: Graph, cache_size: int):
    for summarizer in (
        MagsSummarizer(iterations=5, seed=0),
        MagsDMSummarizer(iterations=5, seed=0),
    ):
        rep = summarizer.summarize(graph).representation
        yield rep, QueryEngine(rep, cache_size=cache_size)


@given(graphs())
@settings(**_SETTINGS)
def test_cold_and_warm_cache_match_neighbor_query(graph: Graph):
    for rep, engine in _engines(graph, cache_size=4):
        for q in range(graph.n):
            oracle = neighbor_query(rep, q)
            assert set(engine.neighbors(q)) == oracle  # cold (or evicted)
            assert set(engine.neighbors(q)) == oracle  # warm
        # Second full sweep: mixture of cache hits and evictions.
        for q in range(graph.n):
            assert set(engine.neighbors(q)) == neighbor_query(rep, q)


@given(graphs(), st.integers(min_value=0, max_value=8))
@settings(**_SETTINGS)
def test_batched_answers_match_neighbor_query(graph: Graph, stride: int):
    for rep, engine in _engines(graph, cache_size=64):
        requests = [
            {"id": i, "op": "neighbors", "node": (i + stride) % graph.n}
            for i in range(2 * graph.n)
        ]
        responses = engine.query_many(requests)
        assert len(responses) == len(requests)
        for request, response in zip(requests, responses):
            assert response["ok"], response
            assert response["id"] == request["id"]
            assert response["result"] == sorted(
                neighbor_query(rep, request["node"])
            )


@given(graphs())
@settings(**_SETTINGS)
def test_degree_and_batch_degree_match(graph: Graph):
    for rep, engine in _engines(graph, cache_size=8):
        degrees = [len(neighbor_query(rep, q)) for q in range(graph.n)]
        assert [engine.degree(q) for q in range(graph.n)] == degrees
        responses = engine.query_many(
            [{"id": q, "op": "degree", "node": q} for q in range(graph.n)]
        )
        assert [r["result"] for r in responses] == degrees
