"""Tests for the losslessness verifier."""

import pytest

from repro.core.encoding import Representation, encode
from repro.core.supernodes import SuperNodePartition
from repro.core.verify import LosslessnessError, verify_lossless


def _valid_representation(graph):
    return encode(SuperNodePartition(graph))


class TestAccepts:
    def test_singleton_encoding(self, paper_like_graph):
        verify_lossless(paper_like_graph, _valid_representation(paper_like_graph))

    def test_merged_encoding(self, paper_like_graph):
        p = SuperNodePartition(paper_like_graph)
        p.merge(0, 1)
        p.merge(3, 4)
        verify_lossless(paper_like_graph, encode(p))

    def test_empty_graph(self):
        from repro.graph.graph import Graph

        g = Graph(0, [])
        verify_lossless(g, _valid_representation(g))


class TestRejects:
    def test_missing_node_in_partition(self, triangle):
        rep = _valid_representation(triangle)
        rep.supernodes.pop(2)
        with pytest.raises(LosslessnessError, match="partition"):
            verify_lossless(triangle, rep)

    def test_overlapping_supernodes(self, triangle):
        rep = _valid_representation(triangle)
        rep.supernodes[0] = [0, 1]
        with pytest.raises(LosslessnessError, match="partition"):
            verify_lossless(triangle, rep)

    def test_conflicting_corrections(self, triangle):
        rep = _valid_representation(triangle)
        rep.additions.add((0, 1))
        rep.removals.add((0, 1))
        with pytest.raises(LosslessnessError, match="both signs"):
            verify_lossless(triangle, rep)

    def test_missing_edge(self, triangle):
        rep = _valid_representation(triangle)
        rep.additions.discard((0, 1))
        with pytest.raises(LosslessnessError, match="missing"):
            verify_lossless(triangle, rep)

    def test_spurious_edge(self, paper_like_graph):
        rep = _valid_representation(paper_like_graph)
        rep.additions.add((5, 6))
        with pytest.raises(LosslessnessError, match="spurious"):
            verify_lossless(paper_like_graph, rep)

    def test_wrong_graph(self, triangle, star_graph):
        rep = _valid_representation(triangle)
        with pytest.raises(LosslessnessError):
            verify_lossless(star_graph, rep)


class TestErrorMessages:
    def test_reports_counts_and_examples(self, paper_like_graph):
        rep = _valid_representation(paper_like_graph)
        rep.additions.discard((0, 2))
        rep.additions.discard((0, 3))
        with pytest.raises(LosslessnessError, match="2 edges missing"):
            verify_lossless(paper_like_graph, rep)
