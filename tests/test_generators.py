"""Tests for the synthetic graph generators."""

import pytest

from repro.graph import generators
from repro.graph.graph import Graph


def _is_simple(graph: Graph) -> bool:
    seen = set()
    for u, v in graph.edges():
        if u == v or (u, v) in seen:
            return False
        seen.add((u, v))
    return True


class TestErdosRenyi:
    def test_size_and_simplicity(self):
        g = generators.erdos_renyi(100, 0.05, seed=1)
        assert g.n == 100
        assert _is_simple(g)

    def test_p_zero_gives_no_edges(self):
        assert generators.erdos_renyi(50, 0.0, seed=1).m == 0

    def test_p_one_gives_complete_graph(self):
        g = generators.erdos_renyi(10, 1.0, seed=1)
        assert g.m == 45

    def test_determinism(self):
        a = generators.erdos_renyi(60, 0.1, seed=7)
        b = generators.erdos_renyi(60, 0.1, seed=7)
        assert a == b

    def test_seed_changes_output(self):
        a = generators.erdos_renyi(60, 0.1, seed=7)
        b = generators.erdos_renyi(60, 0.1, seed=8)
        assert a != b

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi(10, 1.5)

    def test_expected_density(self):
        g = generators.erdos_renyi(200, 0.1, seed=3)
        expected = 0.1 * 200 * 199 / 2
        assert expected * 0.8 < g.m < expected * 1.2


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = generators.barabasi_albert(100, 3, seed=2)
        # m_attach star edges + (n - m_attach - 1) * m_attach new ones,
        # minus possible duplicates (none by construction).
        assert g.m == 3 + (100 - 4) * 3

    def test_heavy_tail(self):
        g = generators.barabasi_albert(300, 2, seed=2)
        degrees = sorted(g.degrees(), reverse=True)
        assert degrees[0] > 4 * g.avg_degree

    def test_determinism(self):
        assert generators.barabasi_albert(80, 3, seed=5) == \
            generators.barabasi_albert(80, 3, seed=5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            generators.barabasi_albert(10, 0)
        with pytest.raises(ValueError):
            generators.barabasi_albert(3, 3)


class TestWattsStrogatz:
    def test_degree_preserved_at_beta_zero(self):
        g = generators.watts_strogatz(40, 4, 0.0, seed=1)
        assert g.m == 40 * 2
        assert all(g.degree(u) == 4 for u in g.nodes())

    def test_rewiring_keeps_edge_count_close(self):
        g = generators.watts_strogatz(60, 4, 0.3, seed=1)
        assert g.m >= 60 * 2 * 0.9

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            generators.watts_strogatz(20, 3, 0.1)

    def test_determinism(self):
        assert generators.watts_strogatz(30, 4, 0.2, seed=9) == \
            generators.watts_strogatz(30, 4, 0.2, seed=9)


class TestPlantedPartition:
    def test_intra_density_exceeds_inter(self):
        g = generators.planted_partition(120, 6, 0.8, 0.02, seed=4)
        same = cross = same_possible = cross_possible = 0
        for u in range(g.n):
            for v in range(u + 1, g.n):
                if u % 6 == v % 6:
                    same_possible += 1
                    same += g.has_edge(u, v)
                else:
                    cross_possible += 1
                    cross += g.has_edge(u, v)
        assert same / same_possible > 5 * (cross / max(cross_possible, 1))

    def test_single_community_is_gnp(self):
        g = generators.planted_partition(30, 1, 0.5, 0.0, seed=4)
        assert g.m > 0

    def test_invalid_communities(self):
        with pytest.raises(ValueError):
            generators.planted_partition(10, 0, 0.5, 0.1)


class TestCaveman:
    def test_structure(self):
        g = generators.caveman(4, 5, seed=0)
        assert g.n == 20
        # 4 cliques of C(5,2)=10 edges plus 4 ring links.
        assert g.m == 44

    def test_single_clique(self):
        g = generators.caveman(1, 4)
        assert g.m == 6

    def test_invalid(self):
        with pytest.raises(ValueError):
            generators.caveman(0, 5)
        with pytest.raises(ValueError):
            generators.caveman(3, 1)


class TestRmat:
    def test_size(self):
        g = generators.rmat(8, 4, seed=6)
        assert g.n <= 256
        assert g.m > 0
        assert _is_simple(g)

    def test_skewed_degrees(self):
        g = generators.rmat(9, 8, seed=6)
        degrees = sorted(g.degrees(), reverse=True)
        assert degrees[0] > 3 * g.avg_degree

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            generators.rmat(5, 2, a=0.5, b=0.4, c=0.4)

    def test_determinism(self):
        assert generators.rmat(7, 3, seed=11) == generators.rmat(7, 3, seed=11)


class TestConfigurationPowerLaw:
    def test_simple_and_sized(self):
        g = generators.configuration_power_law(200, 2.3, seed=3)
        assert g.n <= 200
        assert _is_simple(g)

    def test_min_degree_respected_in_distribution(self):
        g = generators.configuration_power_law(300, 2.5, d_min=3, seed=3)
        # Matching drops some stubs, but the bulk keeps degree >= 2.
        degrees = g.degrees()
        assert (degrees >= 2).mean() > 0.8

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            generators.configuration_power_law(100, 0.9)


class TestCliquesAndStars:
    def test_counts(self):
        g = generators.cliques_and_stars(3, 4, 2, 5, seed=1)
        # 3 cliques of 6 edges, 2 stars of 5 edges, 4 backbone links.
        assert g.m == 3 * 6 + 2 * 5 + 4

    def test_noise_adds_edges(self):
        base = generators.cliques_and_stars(3, 4, 2, 5, seed=1)
        noisy = generators.cliques_and_stars(
            3, 4, 2, 5, noise_edges=30, seed=1
        )
        assert noisy.m > base.m


class TestCopyingModel:
    def test_simple(self):
        g = generators.copying_model(150, 5, 0.1, seed=2)
        assert _is_simple(g)
        assert g.m > 0

    def test_low_mutation_duplicates_neighborhoods(self):
        g = generators.copying_model(200, 6, 0.0, seed=2)
        signatures = {}
        for u in g.nodes():
            signatures.setdefault(frozenset(g.neighbors(u)), []).append(u)
        # At zero mutation some nodes share identical neighborhoods.
        assert any(len(group) > 1 for group in signatures.values())

    def test_invalid(self):
        with pytest.raises(ValueError):
            generators.copying_model(100, 0)
        with pytest.raises(ValueError):
            generators.copying_model(100, 5, mutation=2.0)
        with pytest.raises(ValueError):
            generators.copying_model(4, 5)


class TestTemplatedWeb:
    def test_compressible_structure(self):
        g = generators.templated_web(200, 6, 30, 5, 0.0, seed=2)
        signatures = {}
        for u in range(30, g.n):
            signatures.setdefault(frozenset(g.neighbors(u)), []).append(u)
        biggest = max(len(group) for group in signatures.values())
        assert biggest > 10  # whole template classes share neighborhoods

    def test_mutation_reduces_duplication(self):
        exact = generators.templated_web(200, 6, 30, 5, 0.0, seed=2)
        noisy = generators.templated_web(200, 6, 30, 5, 0.5, seed=2)

        def duplication(graph):
            groups = {}
            for u in graph.nodes():
                groups.setdefault(frozenset(graph.neighbors(u)), []).append(u)
            return max(len(g) for g in groups.values())

        assert duplication(noisy) < duplication(exact)

    def test_invalid(self):
        with pytest.raises(ValueError):
            generators.templated_web(100, 0, 10, 5)
        with pytest.raises(ValueError):
            generators.templated_web(100, 5, 10, 11)
        with pytest.raises(ValueError):
            generators.templated_web(10, 5, 10, 5)
