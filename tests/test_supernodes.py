"""Tests for the super-node partition and its cost bookkeeping."""

import pytest

from repro.core.supernodes import SuperNodePartition
from repro.graph.graph import Graph


class TestInitialState:
    def test_singletons(self, triangle):
        p = SuperNodePartition(triangle)
        assert p.num_supernodes() == 3
        assert all(p.size(u) == 1 for u in p.roots())
        assert all(p.intra(u) == 0 for u in p.roots())

    def test_weights_mirror_adjacency(self, paper_like_graph):
        p = SuperNodePartition(paper_like_graph)
        for u in paper_like_graph.nodes():
            assert set(p.weights(u)) == set(paper_like_graph.neighbors(u))
            assert all(w == 1 for w in p.weights(u).values())

    def test_initial_total_cost_is_m(self, paper_like_graph):
        # Singleton partition: every edge is one plus-correction.
        p = SuperNodePartition(paper_like_graph)
        assert p.total_cost() == paper_like_graph.m

    def test_invariants_hold(self, paper_like_graph):
        SuperNodePartition(paper_like_graph).check_invariants()


class TestMerging:
    def test_merge_returns_live_root(self, triangle):
        p = SuperNodePartition(triangle)
        w = p.merge(0, 1)
        assert w in (0, 1)
        assert p.find(0) == p.find(1) == w
        assert p.num_supernodes() == 2

    def test_merge_tracks_members(self, triangle):
        p = SuperNodePartition(triangle)
        w = p.merge(0, 1)
        assert sorted(p.members(w)) == [0, 1]

    def test_merge_accumulates_intra_edges(self, triangle):
        p = SuperNodePartition(triangle)
        w = p.merge(0, 1)
        assert p.intra(w) == 1  # the (0,1) edge became internal

    def test_merge_combines_weights(self, paper_like_graph):
        p = SuperNodePartition(paper_like_graph)
        w = p.merge(0, 1)  # {a,b}: both adjacent to c=2, d=3, e=4
        assert p.weights(w) == {2: 2, 3: 2, 4: 2}

    def test_third_party_tables_rekeyed(self, paper_like_graph):
        p = SuperNodePartition(paper_like_graph)
        w = p.merge(3, 4)
        # Node 0 was adjacent to both 3 and 4.
        assert p.weights(0) == {2: 1, w: 2}

    def test_merge_into_self_rejected(self, triangle):
        p = SuperNodePartition(triangle)
        with pytest.raises(ValueError):
            p.merge(1, 1)

    def test_merge_dead_root_rejected(self, triangle):
        p = SuperNodePartition(triangle)
        w = p.merge(0, 1)
        dead = 1 if w == 0 else 0
        with pytest.raises(ValueError):
            p.merge(dead, 2)

    def test_chained_merges_keep_invariants(self, community_graph):
        p = SuperNodePartition(community_graph)
        roots = sorted(p.roots())
        for u, v in zip(roots[0:20:2], roots[1:20:2]):
            p.merge(p.find(u), p.find(v))
            p.check_invariants()

    def test_merge_counter(self, clique_graph):
        p = SuperNodePartition(clique_graph)
        p.merge(0, 1)
        p.merge(2, 3)
        assert p.num_merges == 2

    def test_clique_collapses_to_self_edge(self, clique_graph):
        p = SuperNodePartition(clique_graph)
        root = 0
        for v in range(1, 6):
            root = p.merge(root, p.find(v))
        assert p.num_supernodes() == 1
        assert p.intra(root) == 15
        assert p.total_cost() == 1  # one self super-edge

    def test_find_path_compression(self, clique_graph):
        p = SuperNodePartition(clique_graph)
        root = 0
        for v in range(1, 6):
            root = p.merge(root, p.find(v))
        assert all(p.find(u) == root for u in range(6))


class TestCosts:
    def test_pair_cost_counts_edges(self, paper_like_graph):
        p = SuperNodePartition(paper_like_graph)
        assert p.pair_cost(0, 2) == 1
        assert p.pair_cost(0, 5) == 0  # non-adjacent

    def test_pair_cost_after_merge(self, paper_like_graph):
        p = SuperNodePartition(paper_like_graph)
        ab = p.merge(0, 1)
        de = p.merge(3, 4)
        # {a,b} x {d,e}: all 4 edges exist -> super-edge, cost 1.
        assert p.pair_cost(ab, de) == 1

    def test_node_cost_of_singleton_is_degree(self, paper_like_graph):
        p = SuperNodePartition(paper_like_graph)
        for u in paper_like_graph.nodes():
            assert p.node_cost(u) == paper_like_graph.degree(u)

    def test_node_cost_cache_invalidation(self, paper_like_graph):
        p = SuperNodePartition(paper_like_graph)
        before = p.node_cost(2)  # edges to 0, 1, 6 as plus-corrections
        assert before == 3
        p.merge(0, 1)  # node 2 is adjacent to both
        after = p.node_cost(p.find(2))
        # Both edges to {a,b} are now one super-edge (pi=2, edges=2):
        # the cached value must have been invalidated and recomputed.
        assert after == 2

    def test_merged_cost_matches_actual_merge(self, community_graph):
        p = SuperNodePartition(community_graph)
        pairs = [(0, 10), (1, 21), (2, 32)]
        for u, v in pairs:
            ru, rv = p.find(u), p.find(v)
            if ru == rv:
                continue
            predicted = p.merged_cost(ru, rv)
            w = p.merge(ru, rv)
            assert p.node_cost(w) == predicted

    def test_total_cost_equals_sum_over_pairs(self, community_graph):
        p = SuperNodePartition(community_graph)
        for u, v in [(0, 10), (20, 30), (1, 11)]:
            p.merge(p.find(u), p.find(v))
        total = 0
        for r in p.roots():
            total += p.self_cost(r)
            for x in p.weights(r):
                if x > r:
                    total += p.pair_cost(r, x)
        assert total == p.total_cost()


class TestSaving:
    def test_identical_neighborhood_twins_save_half(self, twin_graph):
        p = SuperNodePartition(twin_graph)
        # Nodes 0 and 1 are non-adjacent twins with degree 2.
        assert p.saving(0, 1) == pytest.approx(0.5)

    def test_saving_is_symmetric(self, paper_like_graph):
        p = SuperNodePartition(paper_like_graph)
        assert p.saving(3, 4) == pytest.approx(p.saving(4, 3))

    def test_saving_never_exceeds_half(self, community_graph):
        p = SuperNodePartition(community_graph)
        for u in range(0, 60, 7):
            for v in range(1, 60, 11):
                if u != v:
                    assert p.saving(u, v) <= 0.5 + 1e-12

    def test_saving_of_self_rejected(self, triangle):
        p = SuperNodePartition(triangle)
        with pytest.raises(ValueError):
            p.saving(0, 0)

    def test_isolated_pair_saves_nothing(self):
        g = Graph(4, [(0, 1)])
        p = SuperNodePartition(g)
        assert p.saving(2, 3) == 0.0

    def test_unrelated_singleton_pair_saves_nothing(self):
        # Two degree-1 nodes with no common neighbor: no gain, no loss.
        g = Graph(6, [(0, 1), (2, 3), (4, 5)])
        p = SuperNodePartition(g)
        assert p.saving(0, 2) == pytest.approx(0.0)

    def test_merging_clique_with_outsider_has_negative_saving(
        self, disconnected_graph
    ):
        # Collapse one triangle to a super-node (cost 1: self super-edge),
        # then evaluate merging it with a node of the other triangle:
        # the self pair degrades and cross corrections appear.
        p = SuperNodePartition(disconnected_graph)
        w = p.merge(p.merge(0, 1), p.find(2))
        assert p.saving(w, 3) < 0

    def test_positive_saving_predicts_cost_reduction(self, community_graph):
        """The corrected saving (DESIGN.md decision 5) is exact: a
        positive saving must strictly reduce total cost."""
        p = SuperNodePartition(community_graph)
        tested = 0
        for u in range(0, 40):
            for v in range(u + 1, 40):
                ru, rv = p.find(u), p.find(v)
                if ru == rv:
                    continue
                s = p.saving(ru, rv)
                if s <= 0:
                    continue
                before = p.total_cost()
                w = p.merge(ru, rv)
                after = p.total_cost()
                assert after < before
                tested += 1
                if tested >= 5:
                    return
        assert tested > 0
