"""Cluster collection: span-sink rotation, cross-process trace
reassembly, registry merging, and Histogram.merge properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import registry_to_prometheus
from repro.obs.collect import (
    assemble_trace,
    load_cluster_telemetry,
    merge_registry_snapshots,
    read_trace_dir,
    registry_snapshots,
    render_merged_trace,
    trace_ids,
    write_cluster_telemetry,
)
from repro.obs.exporters import SpanSink, read_trace_jsonl
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.schema import validate_trace


def _record(
    i: int,
    *,
    trace: str = "trace00",
    parent: str | None = None,
    instance: str = "test",
    pid: int = 1234,
    name: str = "work",
    wall: float = 0.001,
    pad: str = "",
) -> dict:
    return {
        "type": "span",
        "v": 2,
        "name": name,
        "span": f"{i:016x}",
        "parent": parent,
        "trace": trace,
        "start_unix": 1000.0 + i,
        "wall_s": wall,
        "cpu_s": wall,
        "attrs": {"pad": pad} if pad else {},
        "counters": {},
        "events": [],
        "pid": pid,
        "instance": instance,
    }


class TestSpanSink:
    def test_writes_schema_valid_jsonl(self, tmp_path):
        with SpanSink(tmp_path, "alpha") as sink:
            for i in range(5):
                sink.write(_record(i))
        (path,) = list(tmp_path.iterdir())
        assert path.name == "alpha.trace.jsonl"
        records = read_trace_jsonl(path)
        assert len(records) == 5
        assert validate_trace(records) == []

    def test_rotation_keeps_newest_generations(self, tmp_path):
        # Each padded record is ~350 bytes; a 1 KiB cap forces several
        # rotations and `keep=2` bounds total disk to 3 files.
        sink = SpanSink(tmp_path, "alpha", max_bytes=1024, keep=2)
        for i in range(20):
            sink.write(_record(i, pad="x" * 250))
        sink.close()
        assert sink.rotations > 0
        files = sorted(p.name for p in tmp_path.iterdir())
        assert "alpha.trace.jsonl" in files
        assert len(files) <= 3  # live + keep rotated generations
        survivors = read_trace_dir(tmp_path)
        # The newest record always survives; older generations beyond
        # `keep` are dropped by design.
        assert any(r["span"] == _record(19)["span"] for r in survivors)

    def test_rejects_invalid_records(self, tmp_path):
        with SpanSink(tmp_path, "alpha") as sink:
            sink.write({"garbage": True})
            sink.write(_record(0))
            assert sink.rejected == 1
        records = read_trace_dir(tmp_path)
        assert len(records) == 1

    def test_unsafe_instance_label_is_sanitised(self, tmp_path):
        with SpanSink(tmp_path, "shard0/r1") as sink:
            sink.write(_record(0))
        (path,) = list(tmp_path.iterdir())
        assert path.name == "shard0-r1.trace.jsonl"


class TestAssembleTrace:
    def _two_process_records(self):
        root = _record(0, instance="router", name="service:request")
        fans = [
            _record(
                i,
                instance="router",
                name="router:fanout",
                parent=root["span"],
            )
            for i in (1, 2)
        ]
        shard_spans = [
            _record(
                10 + i,
                instance=f"shard{i}",
                pid=2000 + i,
                name="service:request",
                parent=fans[i]["span"],
            )
            for i in (0, 1)
        ]
        other = _record(99, trace="other99")
        return [root, *fans, *shard_spans, other]

    def test_single_root_and_parentage(self):
        merged = assemble_trace(self._two_process_records(), "trace00")
        assert len(merged.records) == 5
        assert len(merged.roots) == 1
        assert merged.roots[0]["name"] == "service:request"
        assert merged.instances == ["router", "shard0", "shard1"]
        assert merged.fanout_width == 2
        assert validate_trace(merged.records) == []

    def test_instance_totals_count_local_roots_once(self):
        merged = assemble_trace(self._two_process_records(), "trace00")
        # Router wall = the root only (the fan-outs nest under it);
        # each shard contributes its own request span.
        assert merged.instance_totals["router"]["spans"] == 3
        assert merged.instance_totals["router"]["wall_s"] == pytest.approx(
            0.001
        )
        assert merged.instance_totals["shard0"]["wall_s"] == pytest.approx(
            0.001
        )

    def test_unknown_trace_id_is_empty(self):
        merged = assemble_trace(self._two_process_records(), "missing")
        assert merged.records == []
        assert merged.roots == []

    def test_trace_ids_most_recent_first(self):
        ids = trace_ids(self._two_process_records())
        assert ids == ["other99", "trace00"]

    def test_render_tags_instances(self):
        merged = assemble_trace(self._two_process_records(), "trace00")
        text = render_merged_trace(merged)
        assert "fan-out width 2" in text
        assert "[shard0 pid=2000]" in text
        assert "per-instance totals:" in text


class TestMergeRegistrySnapshots:
    def _snapshots(self):
        out = {}
        for label, requests in (("a", 10), ("b", 32)):
            registry = MetricsRegistry()
            registry.counter("service_requests_total").inc(requests)
            registry.gauge("service_connections_active").set(2)
            hist = registry.histogram("service_request_seconds", op="ping")
            for i in range(requests):
                hist.observe(0.001 * (i + 1))
            out[label] = registry.snapshot(samples=64)
        return out

    def test_counters_keep_per_instance_values(self):
        merged = merge_registry_snapshots(self._snapshots())
        assert merged.counter(
            "service_requests_total", instance="a"
        ).value == 10
        assert merged.counter(
            "service_requests_total", instance="b"
        ).value == 32

    def test_histograms_fold_counts(self):
        merged = merge_registry_snapshots(self._snapshots())
        a = merged.histogram(
            "service_request_seconds", op="ping", instance="a"
        )
        assert a.count == 10
        assert a.percentile(50) == pytest.approx(0.005, rel=0.25)

    def test_prometheus_dump_carries_instance_labels(self):
        merged = merge_registry_snapshots(self._snapshots())
        text = registry_to_prometheus(merged)
        assert 'instance="a"' in text and 'instance="b"' in text
        assert "service_requests_total" in text

    def test_telemetry_file_round_trip(self, tmp_path):
        telemetry = {
            label: {"instance": label, "pid": 1, "registry": snapshot}
            for label, snapshot in self._snapshots().items()
        }
        telemetry["down"] = {"error": "ConnectionError: boom"}
        path = write_cluster_telemetry(telemetry, tmp_path / "ct.json")
        loaded = load_cluster_telemetry(path)
        assert set(loaded) == {"a", "b", "down"}
        assert set(registry_snapshots(loaded)) == {"a", "b"}

    def test_load_rejects_non_telemetry_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"shards": 2}')
        with pytest.raises(ValueError):
            load_cluster_telemetry(path)


_values = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=50,
)


class TestHistogramMergeProperties:
    @settings(max_examples=100, deadline=None)
    @given(xs=_values, ys=_values)
    def test_merge_equals_concatenated_observations(self, xs, ys):
        a, b = Histogram(), Histogram()
        for x in xs:
            a.observe(x)
        for y in ys:
            b.observe(y)
        merged = Histogram()
        merged.merge(a.snapshot(samples=len(xs)))
        merged.merge(b.snapshot(samples=len(ys)))

        reference = Histogram()
        for v in xs + ys:
            reference.observe(v)

        assert merged.count == reference.count
        assert math.isclose(
            merged.sum, reference.sum, rel_tol=1e-9, abs_tol=1e-9
        )
        snap, ref = merged.snapshot(), reference.snapshot()
        assert snap["min"] == ref["min"]
        assert snap["max"] == ref["max"]

    @settings(max_examples=100, deadline=None)
    @given(
        xs=_values,
        ys=_values,
        percentile=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_merged_percentile_bounded_by_data(self, xs, ys, percentile):
        a, b = Histogram(), Histogram()
        for x in xs:
            a.observe(x)
        for y in ys:
            b.observe(y)
        merged = Histogram()
        merged.merge(a.snapshot(samples=len(xs)))
        merged.merge(b.snapshot(samples=len(ys)))
        value = merged.percentile(percentile)
        assert min(xs + ys) <= value <= max(xs + ys)

    @settings(max_examples=50, deadline=None)
    @given(xs=_values)
    def test_merge_without_samples_keeps_lifetime_stats(self, xs):
        source = Histogram()
        for x in xs:
            source.observe(x)
        merged = Histogram()
        merged.merge(source.snapshot())  # no carried samples
        assert merged.count == len(xs)
        assert math.isclose(merged.sum, source.sum, rel_tol=1e-9)

    def test_merge_ignores_garbage(self):
        h = Histogram()
        h.merge({})
        h.merge({"count": "ten"})
        h.merge({"count": -3})
        h.merge({"count": 2, "sum": "x", "samples": "zzz"})
        assert h.count in (0, 2)  # garbage never raises
