"""Multi-instance serving on one box: subprocess lifecycle, metrics
isolation, and clean SIGINT shutdown (the wire-level cluster)."""

import socket
import threading

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.cluster.manager import ClusterManager, InstanceProcess
from repro.cluster.sharder import plan_cluster
from repro.cluster.topology import (
    InstanceSpec,
    TopologyError,
    default_spec,
    load_topology,
)
from repro.graph.generators import planted_partition
from repro.service import SummaryServiceClient


def free_ports(count: int) -> list[int]:
    """Distinct currently-free TCP ports (best effort)."""
    sockets, ports = [], []
    for _ in range(count):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
        ports.append(sock.getsockname()[1])
    for sock in sockets:
        sock.close()
    return ports


@pytest.fixture(scope="module")
def graph():
    return planted_partition(120, 8, 0.6, 0.03, seed=5)


@pytest.fixture(scope="module")
def cluster_dir(graph, tmp_path_factory):
    """A planned 2-shard cluster directory (ports filled at start)."""
    out = tmp_path_factory.mktemp("cluster")
    spec = default_spec(2, 1, seed=0, base_port=free_ports(1)[0])
    plan_cluster(
        graph,
        spec,
        out,
        lambda: MagsDMSummarizer(iterations=4, seed=0),
    )
    return out


def fresh_spec(cluster_dir):
    """Reload the planned topology with unused ports patched in, so
    parallel test runs never collide on an address."""
    spec = load_topology(cluster_dir / "topology.json")
    ports = free_ports(len(spec.instances) + 1)
    spec.router_port = ports[0]
    spec.instances = [
        InstanceSpec(i.shard, i.replica, i.host, port)
        for i, port in zip(spec.instances, ports[1:])
    ]
    return spec


class TestInstanceProcess:
    def test_two_instances_metrics_stay_isolated(self, cluster_dir):
        """Two servers with disjoint shard artifacts under concurrent
        clients: each instance counts exactly its own traffic."""
        spec = fresh_spec(cluster_dir)
        a_spec, b_spec = spec.instances
        a = InstanceProcess(a_spec, spec.artifact_path(0), workers=2)
        b = InstanceProcess(b_spec, spec.artifact_path(1), workers=2)
        try:
            a.start()
            b.start()

            def hammer(instance, pings):
                with SummaryServiceClient(*instance.address) as client:
                    for _ in range(pings):
                        client.ping()

            threads = [
                threading.Thread(target=hammer, args=(a_spec, 30)),
                threading.Thread(target=hammer, args=(b_spec, 50)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            with SummaryServiceClient(*a_spec.address) as client:
                a_total = client.stats()["requests_total"]
            with SummaryServiceClient(*b_spec.address) as client:
                b_total = client.stats()["requests_total"]
            # Each server saw its own pings (the probing stats request
            # may or may not be in its own snapshot) — nothing more.
            assert a_total in (30, 31)
            assert b_total in (50, 51)
        finally:
            a_code = a.stop()
            b_code = b.stop()
        assert a_code == 0
        assert b_code == 0

    def test_sigint_is_a_clean_shutdown(self, cluster_dir):
        """The existing SIGINT path shuts a subprocess instance down
        with exit code 0 and the final log line."""
        spec = fresh_spec(cluster_dir)
        proc = InstanceProcess(
            spec.instances[0], spec.artifact_path(0), workers=2
        )
        proc.start()
        assert proc.running
        code = proc.stop()
        assert code == 0
        assert not proc.running
        assert "shutdown complete" in proc.output_tail()

    def test_missing_artifact_fails_fast(self, tmp_path):
        inst = InstanceSpec(0, 0, "127.0.0.1", free_ports(1)[0])
        proc = InstanceProcess(inst, tmp_path / "nope.txt.gz")
        with pytest.raises(TopologyError, match="does not exist"):
            proc.start()


class TestClusterManager:
    def test_full_cluster_round_trip(self, cluster_dir, graph):
        """Subprocess instances + in-process router, end to end."""
        spec = fresh_spec(cluster_dir)
        manager = ClusterManager(spec, workers=2)
        with manager:
            host, port = manager.router_server.address
            assert (host, port) == spec.router_address
            with SummaryServiceClient(host, port) as client:
                assert client.ping() == "pong"
                for node in (0, 13, graph.n - 1):
                    assert client.degree(node) == graph.degree(node)
                    assert client.neighbors(node) == sorted(
                        graph.neighbors(node)
                    )
                stats = client.stats()
                agg = stats["cluster"]["aggregate"]
                assert agg["instances_up"] == 2
        # Context exit stops everything; codes are recorded by stop()
        # (idempotent second call returns the same codes).
        codes = manager.stop()
        assert set(codes.values()) == {0}
