"""Smoke tests: every example script runs to completion.

Each example is executed in-process with its module-level ``main()``
so assertion failures inside the examples (they all self-verify)
surface as test failures.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_has_enough_examples():
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [f"{name}.py"])
    module = _load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it did
