"""Tests for bounded-error lossy summarization (paper's future work)."""

import pytest

from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.lossy import make_lossy, neighborhood_errors
from repro.graph.generators import planted_partition, templated_web


@pytest.fixture(scope="module")
def summarized():
    graph = planted_partition(200, 10, 0.6, 0.03, seed=17)
    rep = MagsDMSummarizer(iterations=12, seed=1).summarize(graph).representation
    return graph, rep


class TestMakeLossy:
    def test_epsilon_zero_is_lossless(self, summarized):
        graph, rep = summarized
        lossy = make_lossy(rep, 0.0)
        assert lossy.corrections_dropped == 0
        assert lossy.representation.reconstruct_edges() == graph.edge_set()

    def test_invalid_epsilon(self, summarized):
        __, rep = summarized
        with pytest.raises(ValueError):
            make_lossy(rep, -0.1)
        with pytest.raises(ValueError):
            make_lossy(rep, 1.5)

    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.3, 1.0])
    def test_error_bound_respected(self, summarized, epsilon):
        """The defining contract: every node's symmetric-difference
        error stays within epsilon * degree."""
        graph, rep = summarized
        lossy = make_lossy(rep, epsilon)
        errors = neighborhood_errors(graph, lossy.representation)
        for v in graph.nodes():
            assert errors[v] <= epsilon * graph.degree(v) + 1e-9

    def test_cost_monotone_in_epsilon(self, summarized):
        __, rep = summarized
        costs = [make_lossy(rep, eps).cost for eps in (0.0, 0.1, 0.3, 1.0)]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_larger_epsilon_drops_more(self, summarized):
        __, rep = summarized
        small = make_lossy(rep, 0.1)
        large = make_lossy(rep, 0.5)
        assert large.corrections_dropped >= small.corrections_dropped

    def test_input_not_mutated(self, summarized):
        __, rep = summarized
        before = (set(rep.additions), set(rep.removals))
        make_lossy(rep, 0.5)
        assert (rep.additions, rep.removals) == before

    def test_deterministic(self, summarized):
        __, rep = summarized
        a = make_lossy(rep, 0.2)
        b = make_lossy(rep, 0.2)
        assert a.dropped_additions == b.dropped_additions
        assert a.dropped_removals == b.dropped_removals

    def test_dropped_sets_disjoint_from_kept(self, summarized):
        __, rep = summarized
        lossy = make_lossy(rep, 0.3)
        assert not lossy.dropped_additions & lossy.representation.additions
        assert not lossy.dropped_removals & lossy.representation.removals

    def test_pipeline_with_mags(self):
        """The paper's suggested pipeline: Mags then bounded-error."""
        graph = templated_web(300, 15, 40, 6, 0.1, seed=5)
        rep = MagsSummarizer(iterations=10, seed=1).summarize(
            graph
        ).representation
        lossy = make_lossy(rep, 0.2)
        assert lossy.cost <= rep.cost
        errors = neighborhood_errors(graph, lossy.representation)
        for v in graph.nodes():
            assert errors[v] <= 0.2 * graph.degree(v) + 1e-9


class TestNeighborhoodErrors:
    def test_lossless_has_zero_errors(self, summarized):
        graph, rep = summarized
        assert neighborhood_errors(graph, rep) == [0] * graph.n

    def test_error_counts_both_endpoints(self, summarized):
        graph, rep = summarized
        lossy = make_lossy(rep, 0.3)
        errors = neighborhood_errors(graph, lossy.representation)
        assert sum(errors) == 2 * lossy.corrections_dropped
