"""Tests for the optimal output encoding (Algorithm 4)."""

import pytest

from repro.core.encoding import encode
from repro.core.supernodes import SuperNodePartition
from repro.graph.graph import Graph


def _encode_with_merges(graph, merge_groups):
    partition = SuperNodePartition(graph)
    for group in merge_groups:
        root = partition.find(group[0])
        for v in group[1:]:
            root = partition.merge(root, partition.find(v))
    return partition, encode(partition)


class TestSingletonEncoding:
    def test_every_edge_is_a_plus_correction(self, paper_like_graph):
        __, rep = _encode_with_merges(paper_like_graph, [])
        assert rep.summary_edges == set()
        assert rep.additions == paper_like_graph.edge_set()
        assert rep.removals == set()
        assert rep.cost == paper_like_graph.m

    def test_relative_size_is_one(self, paper_like_graph):
        __, rep = _encode_with_merges(paper_like_graph, [])
        assert rep.relative_size == pytest.approx(1.0)


class TestPaperExample:
    def test_figure1_style_encoding(self, paper_like_graph):
        """Merging {a,b}, {d,e}, {f,g,h} reproduces the Figure 2
        representation: super-edges plus corrections -(e,f), +(c,g)."""
        partition, rep = _encode_with_merges(
            paper_like_graph, [[0, 1], [3, 4], [5, 6, 7]]
        )
        ab, de, fgh = (
            partition.find(0), partition.find(3), partition.find(5)
        )
        expected_edges = {
            tuple(sorted(p)) for p in [(ab, 2), (ab, de), (de, fgh)]
        }
        assert rep.summary_edges == expected_edges
        assert rep.removals == {(4, 5)}
        assert rep.additions == {(2, 6)}
        assert rep.cost == 5

    def test_reconstruction_is_exact(self, paper_like_graph):
        __, rep = _encode_with_merges(
            paper_like_graph, [[0, 1], [3, 4], [5, 6, 7]]
        )
        assert rep.reconstruct_edges() == paper_like_graph.edge_set()
        assert rep.reconstruct() == paper_like_graph


class TestSelfEdges:
    def test_clique_gets_self_superedge(self, clique_graph):
        partition, rep = _encode_with_merges(clique_graph, [list(range(6))])
        root = partition.find(0)
        assert rep.summary_edges == {(root, root)}
        assert rep.cost == 1
        assert rep.reconstruct_edges() == clique_graph.edge_set()

    def test_near_clique_self_edge_with_removal(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])  # K4 - (2,3)
        partition, rep = _encode_with_merges(g, [[0, 1, 2, 3]])
        root = partition.find(0)
        assert rep.summary_edges == {(root, root)}
        assert rep.removals == {(2, 3)}
        assert rep.reconstruct_edges() == g.edge_set()

    def test_sparse_interior_stays_plus_corrections(self):
        g = Graph(4, [(0, 1), (2, 3)])
        partition, rep = _encode_with_merges(g, [[0, 1, 2, 3]])
        assert rep.summary_edges == set()
        assert rep.additions == {(0, 1), (2, 3)}


class TestCrossEdges:
    def test_dense_cross_pair_gets_superedge(self):
        # Complete bipartite K_{2,3}.
        g = Graph(5, [(u, v) for u in range(2) for v in range(2, 5)])
        partition, rep = _encode_with_merges(g, [[0, 1], [2, 3, 4]])
        left, right = partition.find(0), partition.find(2)
        assert rep.summary_edges == {tuple(sorted((left, right)))}
        assert rep.cost == 1

    def test_missing_cross_edges_become_removals(self):
        g = Graph(5, [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3)])
        __, rep = _encode_with_merges(g, [[0, 1], [2, 3, 4]])
        assert rep.removals == {(1, 4)}
        assert rep.reconstruct_edges() == g.edge_set()

    def test_sparse_cross_edges_become_additions(self):
        g = Graph(6, [(0, 3)])
        __, rep = _encode_with_merges(g, [[0, 1, 2], [3, 4, 5]])
        assert rep.summary_edges == set()
        assert rep.additions == {(0, 3)}


class TestRepresentationProperties:
    def test_cost_equation(self, paper_like_graph):
        __, rep = _encode_with_merges(paper_like_graph, [[0, 1], [3, 4]])
        assert rep.cost == len(rep.summary_edges) + rep.num_corrections

    def test_cost_never_exceeds_m(self, community_graph):
        partition, rep = _encode_with_merges(
            community_graph, [[i, i + 10] for i in range(10)]
        )
        assert rep.cost <= community_graph.m

    def test_supernode_of(self, paper_like_graph):
        partition, rep = _encode_with_merges(paper_like_graph, [[0, 1]])
        assert rep.supernode_of(0) == rep.supernode_of(1)
        assert rep.supernode_of(0) != rep.supernode_of(2)

    def test_num_supernodes(self, paper_like_graph):
        __, rep = _encode_with_merges(
            paper_like_graph, [[0, 1], [3, 4], [5, 6, 7]]
        )
        assert rep.num_supernodes == 4

    def test_empty_graph(self):
        g = Graph(0, [])
        rep = encode(SuperNodePartition(g))
        assert rep.cost == 0
        assert rep.relative_size == 0.0
        assert rep.reconstruct_edges() == set()

    def test_edgeless_graph(self):
        g = Graph(5, [])
        rep = encode(SuperNodePartition(g))
        assert rep.cost == 0
        assert rep.num_supernodes == 5


class TestSuperedgeAdjacency:
    def test_matches_summary_edges(self, paper_like_graph):
        __, rep = _encode_with_merges(
            paper_like_graph, [[0, 1], [3, 4], [5, 6, 7]]
        )
        adjacency = rep.superedge_adjacency()
        assert set(adjacency) == set(rep.supernodes)
        rebuilt = {
            (min(su, sv), max(su, sv))
            for su, neighbors in adjacency.items()
            for sv in neighbors
        }
        assert rebuilt == {
            (min(su, sv), max(su, sv))
            for su, sv in rep.summary_edges
            if su != sv
        }

    def test_self_edges_excluded(self, clique_graph):
        merged_rep = _encode_with_merges(
            clique_graph, [[0, 1, 2, 3, 4, 5]]
        )[1]
        root = merged_rep.supernode_of(0)
        assert (root, root) in merged_rep.summary_edges
        assert merged_rep.superedge_adjacency()[root] == []

    def test_cached_instance_is_reused(self, paper_like_graph):
        __, rep = _encode_with_merges(paper_like_graph, [[0, 1]])
        assert rep.superedge_adjacency() is rep.superedge_adjacency()


class TestRepr:
    def test_repr_is_compact(self, paper_like_graph):
        rep = _encode_with_merges(paper_like_graph, [[0, 1], [3, 4]])[1]
        text = repr(rep)
        assert text.startswith("Representation(")
        assert "relative_size=" in text
        assert len(text) < 200
