"""Property tests: online ingest == from-scratch, even across crashes.

Two invariants, over arbitrary graphs and arbitrary valid interleavings
of insertions and deletions driven through the real ingest path:

1. **Online == offline.**  The graph reconstructed from the mutated
   summary equals a :class:`~repro.graph.graph.Graph` built directly
   from the final edge set (``Graph.__eq__``).
2. **Crash == no crash.**  Tearing the WAL at an arbitrary byte and
   recovering yields exactly the oracle state of the surviving durable
   prefix — never a torn or divergent state.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.durability import WriteAheadLog, recover_engine, replay_tail
from repro.dynamic.summary import DynamicGraphSummary
from repro.graph.graph import Graph
from repro.resilience.checkpoint import CheckpointStore
from repro.service.ingest import MutableQueryEngine

_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def ingest_scenarios(draw):
    """A graph plus tokens that map deterministically to valid ops."""
    n = draw(st.integers(min_value=3, max_value=14))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    count = draw(st.integers(0, min(len(possible), 25)))
    indices = draw(
        st.lists(
            st.integers(0, len(possible) - 1),
            min_size=count, max_size=count, unique=True,
        )
    )
    tokens = draw(
        st.lists(st.integers(0, 10**6), min_size=1, max_size=30)
    )
    return n, [possible[i] for i in indices], tokens


def _script_from_tokens(n, initial_edges, tokens):
    """Turn arbitrary integers into a valid insert/delete interleaving."""
    edges = set(initial_edges)
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    script = []
    for token in tokens:
        free = sorted(set(possible) - edges)
        present = sorted(edges)
        if token % 2 == 0 and free:
            edge = free[(token // 2) % len(free)]
            edges.add(edge)
            script.append(("+", *edge))
        elif present:
            edge = present[(token // 2) % len(present)]
            edges.discard(edge)
            script.append(("-", *edge))
        elif free:
            edge = free[(token // 2) % len(free)]
            edges.add(edge)
            script.append(("+", *edge))
    return script, edges


def _summarize(n, edges):
    graph = Graph(n, sorted(edges))
    rep = MagsDMSummarizer(iterations=5, seed=0).summarize(
        graph
    ).representation
    return graph, rep


@given(scenario=ingest_scenarios())
@settings(**_SETTINGS)
def test_online_ingest_equals_final_edge_set(scenario):
    n, initial_edges, tokens = scenario
    script, final_edges = _script_from_tokens(n, initial_edges, tokens)
    _, rep = _summarize(n, initial_edges)
    engine = MutableQueryEngine(
        DynamicGraphSummary.from_representation(rep)
    )
    for i, mutation in enumerate(script):
        result = engine.query(
            {"id": i, "op": "ingest", "stream": "hypo", "seq": i,
             "mutations": [list(mutation)]}
        )
        assert result["ok"], result
        assert result["epoch"] == i + 1
    assert engine._dynamic.to_graph() == Graph(n, sorted(final_edges))
    # And the from-scratch summary of the final graph reconstructs the
    # same graph (both sides of the paper's losslessness claim).
    _, fresh_rep = _summarize(n, final_edges)
    assert Graph(
        n, sorted(fresh_rep.reconstruct_edges())
    ) == engine._dynamic.to_graph()


@given(scenario=ingest_scenarios(), cut_fraction=st.floats(0.0, 1.0))
@settings(**_SETTINGS)
def test_wal_replay_after_torn_crash_matches_durable_prefix(
    scenario, cut_fraction
):
    n, initial_edges, tokens = scenario
    script, _ = _script_from_tokens(n, initial_edges, tokens)
    _, rep = _summarize(n, initial_edges)
    with tempfile.TemporaryDirectory() as raw_dir:
        wal_dir = Path(raw_dir)
        wal = WriteAheadLog(wal_dir, fsync="never")
        engine = MutableQueryEngine(
            DynamicGraphSummary.from_representation(rep), wal=wal
        )
        for i, mutation in enumerate(script):
            engine.ingest("hypo", i, [list(mutation)])
        wal.close()

        # Crash: tear the log at an arbitrary byte offset.
        segment = next(iter(sorted(wal_dir.glob("wal-*.log"))), None)
        if segment is not None:
            data = segment.read_bytes()
            segment.write_bytes(data[: int(len(data) * cut_fraction)])

        wal2 = WriteAheadLog(wal_dir, fsync="never")
        engine2, pending, report = recover_engine(
            rep, wal2, CheckpointStore(wal_dir / "ckpt"),
            engine_factory=lambda d: MutableQueryEngine(d, wal=wal2),
        )
        replay_tail(engine2, pending, report)
        survived = engine2.applied_lsn
        wal2.close()

    assert 0 <= survived <= len(script)
    # The recovered state is the oracle state of the surviving prefix
    # - exactly, never torn mid-batch.
    oracle = set(initial_edges)
    for sign, u, v in script[:survived]:
        if sign == "+":
            oracle.add((u, v))
        else:
            oracle.discard((u, v))
    assert engine2._dynamic.to_graph() == Graph(n, sorted(oracle))
    assert engine2.epoch == survived
