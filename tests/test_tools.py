"""Tests for the bench-results summary tool."""

import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import summarize_bench_results as tool  # noqa: E402


@pytest.fixture
def fake_results(tmp_path):
    (tmp_path / "fig4_compactness_small.txt").write_text(
        "Figures 4/6: small graphs (T=20)\n"
        "================================\n"
        "dataset  algorithm  relative_size\n"
        "---------------------------------\n"
        "CA       Mags       0.7000\n"
        "CA       Greedy     0.6900\n"
        "CA       LDME       0.8000\n"
    )
    return tmp_path


class TestRowParser:
    def test_parses_data_rows_only(self, fake_results):
        rows = tool.rows(
            "fig4_compactness_small",
            ["dataset", "algorithm", "rel"],
            results=fake_results,
        )
        assert len(rows) == 3
        assert rows[0] == {"dataset": "CA", "algorithm": "Mags", "rel": 0.7}

    def test_skips_chart_sections(self, tmp_path):
        (tmp_path / "x.txt").write_text(
            "dataset  algorithm  v\n"
            "A        a          1.0\n"
            "dataset=A\n"
            "  a  ##### 1.0\n"
        )
        rows = tool.rows("x", ["dataset", "algorithm", "v"], results=tmp_path)
        assert len(rows) == 1

    def test_none_for_missing_values(self, tmp_path):
        (tmp_path / "y.txt").write_text("UK  Slugger  -\n")
        rows = tool.rows("y", ["dataset", "algorithm", "v"], results=tmp_path)
        assert rows[0]["v"] is None


class TestAggregates:
    def test_gmean(self):
        assert tool.gmean([2.0, 8.0]) == pytest.approx(4.0)

    def test_cell_index(self, fake_results):
        rows = tool.rows(
            "fig4_compactness_small",
            ["dataset", "algorithm", "rel"],
            results=fake_results,
        )
        table = tool.cell(rows, "rel")
        assert table[("CA", "Greedy")] == pytest.approx(0.69)


import perf_gate  # noqa: E402


class TestPerfGateEvaluate:
    """The gate's pure comparison logic, on synthetic measurements."""

    @staticmethod
    def _baseline(cal=0.1):
        return {
            "calibration_s": cal,
            "benchmarks": {
                "test_micro_encode": {"time_s": 0.010},
                perf_gate.SCALAR_BENCH: {"time_s": 0.020},
                perf_gate.BATCHED_BENCH: {"time_s": 0.008},
            },
        }

    def _means(self, scale=1.0):
        return {
            "test_micro_encode": 0.010 * scale,
            perf_gate.SCALAR_BENCH: 0.020 * scale,
            perf_gate.BATCHED_BENCH: 0.008 * scale,
        }

    def test_identical_run_passes(self):
        failures, _ = perf_gate.evaluate(
            self._means(), 0.1, self._baseline()
        )
        assert failures == []

    def test_regression_beyond_threshold_fails(self):
        means = self._means()
        means["test_micro_encode"] *= 1.4
        failures, lines = perf_gate.evaluate(
            means, 0.1, self._baseline(), threshold=0.25
        )
        assert any("test_micro_encode" in f for f in failures)
        assert any("REGRESSION" in line for line in lines)

    def test_calibration_normalizes_across_machines(self):
        # Twice-slower machine: every mean doubles, but so does the
        # calibration time -> no regression.
        failures, _ = perf_gate.evaluate(
            self._means(scale=2.0), 0.2, self._baseline(cal=0.1)
        )
        assert failures == []

    def test_speedup_floor_enforced(self):
        means = self._means()
        means[perf_gate.BATCHED_BENCH] = means[perf_gate.SCALAR_BENCH]
        failures, _ = perf_gate.evaluate(
            means, 0.1, self._baseline(), min_speedup=1.5
        )
        assert any("speedup" in f for f in failures)

    def test_new_and_missing_benches_do_not_fail(self):
        means = self._means()
        means["test_micro_brand_new"] = 0.5
        del means["test_micro_encode"]
        failures, lines = perf_gate.evaluate(
            means, 0.1, self._baseline()
        )
        assert failures == []
        assert any("(new bench)" in line for line in lines)
        assert any("(baseline only)" in line for line in lines)

    def test_missing_speedup_benches_fail(self):
        failures, _ = perf_gate.evaluate(
            {"test_micro_encode": 0.010}, 0.1, self._baseline()
        )
        assert any("speedup benches missing" in f for f in failures)

    def test_committed_baseline_parses(self):
        if not perf_gate.DEFAULT_BASELINE.exists():
            pytest.skip("baseline not generated yet")
        import json

        with open(perf_gate.DEFAULT_BASELINE) as handle:
            baseline = json.load(handle)
        assert baseline["calibration_s"] > 0
        assert perf_gate.BATCHED_BENCH in baseline["benchmarks"]
        assert perf_gate.SCALAR_BENCH in baseline["benchmarks"]
