"""Tests for the bench-results summary tool."""

import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import summarize_bench_results as tool  # noqa: E402


@pytest.fixture
def fake_results(tmp_path):
    (tmp_path / "fig4_compactness_small.txt").write_text(
        "Figures 4/6: small graphs (T=20)\n"
        "================================\n"
        "dataset  algorithm  relative_size\n"
        "---------------------------------\n"
        "CA       Mags       0.7000\n"
        "CA       Greedy     0.6900\n"
        "CA       LDME       0.8000\n"
    )
    return tmp_path


class TestRowParser:
    def test_parses_data_rows_only(self, fake_results):
        rows = tool.rows(
            "fig4_compactness_small",
            ["dataset", "algorithm", "rel"],
            results=fake_results,
        )
        assert len(rows) == 3
        assert rows[0] == {"dataset": "CA", "algorithm": "Mags", "rel": 0.7}

    def test_skips_chart_sections(self, tmp_path):
        (tmp_path / "x.txt").write_text(
            "dataset  algorithm  v\n"
            "A        a          1.0\n"
            "dataset=A\n"
            "  a  ##### 1.0\n"
        )
        rows = tool.rows("x", ["dataset", "algorithm", "v"], results=tmp_path)
        assert len(rows) == 1

    def test_none_for_missing_values(self, tmp_path):
        (tmp_path / "y.txt").write_text("UK  Slugger  -\n")
        rows = tool.rows("y", ["dataset", "algorithm", "v"], results=tmp_path)
        assert rows[0]["v"] is None


class TestAggregates:
    def test_gmean(self):
        assert tool.gmean([2.0, 8.0]) == pytest.approx(4.0)

    def test_cell_index(self, fake_results):
        rows = tool.rows(
            "fig4_compactness_small",
            ["dataset", "algorithm", "rel"],
            results=fake_results,
        )
        table = tool.cell(rows, "rel")
        assert table[("CA", "Greedy")] == pytest.approx(0.69)
