"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, build_parser, main
from repro.graph.io import load_graph, save_graph
from repro.graph.generators import planted_partition


@pytest.fixture
def edge_file(tmp_path):
    graph = planted_partition(80, 5, 0.7, 0.05, seed=2)
    path = tmp_path / "graph.txt"
    save_graph(path, graph)
    return path, graph


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_summarize_defaults(self):
        args = build_parser().parse_args(["summarize", "g.txt"])
        assert args.algorithm == "mags-dm"
        assert args.iterations == 50
        assert args.epsilon == 0.0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "summary.txt"])
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.workers == 8
        assert args.cache_size == 4096
        assert args.request_timeout == 10.0
        assert args.log_interval == 30.0

    def test_all_algorithms_registered(self):
        assert set(ALGORITHMS) == {
            "mags", "mags-dm", "greedy", "randomized",
            "sweg", "ldme", "slugger",
        }

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summarize", "g.txt", "-a", "nope"])


class TestSummarize:
    def test_summarize_and_reconstruct(self, tmp_path, edge_file, capsys):
        path, graph = edge_file
        summary = tmp_path / "summary.txt"
        restored = tmp_path / "restored.txt"
        assert main([
            "summarize", str(path), "-a", "mags", "-T", "8",
            "-o", str(summary),
        ]) == 0
        assert "relative_size" in capsys.readouterr().out
        assert main(["reconstruct", str(summary), "-o", str(restored)]) == 0
        assert load_graph(restored) == graph

    def test_lossy_flag(self, tmp_path, edge_file, capsys):
        path, __ = edge_file
        assert main([
            "summarize", str(path), "-T", "8", "--epsilon", "0.3",
            "-o", str(tmp_path / "s.txt"),
        ]) == 0
        assert "lossy" in capsys.readouterr().out

    def test_no_verify_flag(self, edge_file):
        path, __ = edge_file
        assert main(["summarize", str(path), "-T", "4", "--no-verify"]) == 0


class TestOtherCommands:
    def test_stats(self, edge_file, capsys):
        path, graph = edge_file
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"{graph.n}" in out
        assert f"{graph.m}" in out

    def test_compare(self, edge_file, capsys):
        path, __ = edge_file
        assert main([
            "compare", str(path), "-a", "mags-dm,sweg", "-T", "5"
        ]) == 0
        out = capsys.readouterr().out
        assert "mags-dm" in out
        assert "sweg" in out

    def test_compare_unknown_algorithm(self, edge_file):
        path, __ = edge_file
        assert main(["compare", str(path), "-a", "nope"]) == 2

    def test_dataset_export(self, tmp_path, capsys):
        out_path = tmp_path / "ca.txt"
        assert main(["dataset", "CA", "-o", str(out_path)]) == 0
        exported = load_graph(out_path)
        assert exported.n > 0


class TestBenchCommand:
    def test_list_experiments(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table3" in out

    def test_unknown_experiment(self, capsys):
        assert main(["bench", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_table2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        monkeypatch.setenv("REPRO_BENCH_T", "3")
        assert main(["bench", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "CA" in out


class TestCheckpointCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["summarize", "g.txt"])
        assert args.checkpoint_dir is None
        assert args.checkpoint_interval == 5
        assert args.resume is False
        serve = build_parser().parse_args(["serve", "summary.txt"])
        assert serve.max_pending is None
        assert serve.degraded is False
        assert serve.breaker_threshold == 0

    def test_resume_requires_checkpoint_dir(self, edge_file, capsys):
        path, __ = edge_file
        assert main(["summarize", str(path), "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_then_resume(self, tmp_path, edge_file, capsys):
        path, __ = edge_file
        ckpt_dir = tmp_path / "ckpts"
        assert main([
            "summarize", str(path), "-a", "mags-dm", "-T", "6",
            "--checkpoint-dir", str(ckpt_dir),
            "--checkpoint-interval", "2",
        ]) == 0
        first = capsys.readouterr().out
        assert list(ckpt_dir.glob("ckpt-*.json"))
        assert main([
            "summarize", str(path), "-a", "mags-dm", "-T", "6",
            "--checkpoint-dir", str(ckpt_dir), "--resume",
        ]) == 0
        resumed = capsys.readouterr().out
        assert "resuming from checkpoint step 6" in resumed
        # The resumed run restores the finished state: same summary
        # (compare up to the wall-clock field, which always differs).
        line = [l for l in first.splitlines() if "relative_size" in l]
        assert line and line[0].split(" time=")[0] in resumed

    def test_resume_with_empty_dir_starts_fresh(
        self, tmp_path, edge_file, capsys
    ):
        path, __ = edge_file
        assert main([
            "summarize", str(path), "-a", "mags-dm", "-T", "4",
            "--checkpoint-dir", str(tmp_path / "none"), "--resume",
        ]) == 0
        assert "no valid checkpoint found" in capsys.readouterr().out


class TestClusterCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["cluster", "plan", "g.txt", "-o", "out"]
        )
        assert args.cluster_command == "plan"
        assert args.shards == 2
        assert args.replicas == 1
        assert args.base_port == 7400

    def test_plan_then_status_down(self, tmp_path, edge_file, capsys):
        path, graph = edge_file
        out = tmp_path / "cluster"
        code = main([
            "cluster", "plan", str(path),
            "-o", str(out),
            "--shards", "2",
            "-T", "4",
            "--base-port", "7610",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "topology written" in captured
        assert (out / "topology.json").exists()
        assert (out / "shard-0.summary.txt.gz").exists()
        assert (out / "shard-1.summary.txt.gz").exists()

        # Nothing is running: status reports every target down.
        code = main(["cluster", "status", str(out / "topology.json")])
        assert code == 1
        assert "DOWN" in capsys.readouterr().out

    def test_plan_rejects_mismatched_template(self, tmp_path, edge_file):
        import json

        path, _ = edge_file
        template = tmp_path / "template.json"
        from repro.cluster.topology import default_spec, save_topology

        save_topology(template, default_spec(4, 1))
        code = main([
            "cluster", "plan", str(path),
            "-o", str(tmp_path / "out"),
            "--shards", "2",
            "--topology", str(template),
        ])
        assert code == 2

    def test_stop_unreachable_reports_failure(self, tmp_path, edge_file):
        path, _ = edge_file
        out = tmp_path / "cluster"
        assert main([
            "cluster", "plan", str(path), "-o", str(out),
            "-T", "2", "--base-port", "7620",
        ]) == 0
        code = main([
            "cluster", "stop", str(out / "topology.json"),
            "--timeout", "0.5",
        ])
        assert code == 1

    def test_status_missing_topology(self, tmp_path, capsys):
        code = main([
            "cluster", "status", str(tmp_path / "missing.json")
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err
