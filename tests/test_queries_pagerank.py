"""Tests for PageRank on the input graph vs. on the summary (Alg. 7)."""

import numpy as np
import pytest

from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.encoding import encode
from repro.core.supernodes import SuperNodePartition
from repro.graph.generators import caveman, planted_partition, templated_web
from repro.graph.graph import Graph
from repro.queries.pagerank import (
    SummaryPageRank,
    pagerank_input_graph,
    pagerank_reference,
    pagerank_summary,
)


class TestInputGraphPageRank:
    def test_matches_reference(self, paper_like_graph):
        fast = pagerank_input_graph(paper_like_graph, 0.85, 10)
        slow = pagerank_reference(paper_like_graph, 0.85, 10)
        assert np.allclose(fast, slow)

    def test_isolated_nodes_get_base_rank(self):
        g = Graph(3, [(0, 1)])
        ranks = pagerank_input_graph(g, 0.85, 5)
        assert ranks[2] == pytest.approx(0.15)

    def test_symmetric_nodes_equal_rank(self, triangle):
        ranks = pagerank_input_graph(triangle, 0.85, 15)
        assert np.allclose(ranks, ranks[0])

    def test_hub_outranks_leaves(self, star_graph):
        ranks = pagerank_input_graph(star_graph, 0.85, 15)
        assert ranks[0] > ranks[1]

    def test_empty_graph(self):
        assert pagerank_input_graph(Graph(0, []), 0.85, 3).shape == (0,)

    def test_zero_iterations_returns_initial(self, triangle):
        assert np.allclose(pagerank_input_graph(triangle, 0.85, 0), 1.0)


class TestSummaryPageRank:
    def _assert_summary_matches(self, graph, merges=()):
        partition = SuperNodePartition(graph)
        for u, v in merges:
            partition.merge(partition.find(u), partition.find(v))
        rep = encode(partition)
        expected = pagerank_input_graph(graph, 0.85, 12)
        got = pagerank_summary(rep, 0.85, 12)
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_singleton_encoding(self, paper_like_graph):
        self._assert_summary_matches(paper_like_graph)

    def test_with_cross_superedges(self, paper_like_graph):
        self._assert_summary_matches(
            paper_like_graph, [(0, 1), (3, 4), (5, 6), (5, 7)]
        )

    def test_with_self_superedge(self, clique_graph):
        self._assert_summary_matches(
            clique_graph, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]
        )

    def test_with_removal_corrections(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
        self._assert_summary_matches(g, [(0, 1), (2, 3)])

    def test_on_mags_output(self, community_graph):
        result = MagsSummarizer(iterations=10, seed=1).summarize(
            community_graph
        )
        expected = pagerank_input_graph(community_graph, 0.85, 15)
        got = pagerank_summary(result.representation, 0.85, 15)
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_on_mags_dm_output(self):
        g = templated_web(300, 10, 40, 6, 0.05, seed=4)
        result = MagsDMSummarizer(iterations=10, seed=1).summarize(g)
        expected = pagerank_input_graph(g, 0.85, 15)
        got = pagerank_summary(result.representation, 0.85, 15)
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_isolated_nodes(self):
        g = Graph(5, [(0, 1), (0, 2)])
        partition = SuperNodePartition(g)
        partition.merge(1, 2)
        rep = encode(partition)
        expected = pagerank_input_graph(g, 0.85, 8)
        np.testing.assert_allclose(
            pagerank_summary(rep, 0.85, 8), expected
        )

    def test_engine_reuse(self, community_graph):
        result = MagsDMSummarizer(iterations=8, seed=2).summarize(
            community_graph
        )
        engine = SummaryPageRank(result.representation)
        a = engine.run(0.85, 5)
        b = engine.run(0.85, 5)
        np.testing.assert_array_equal(a, b)

    def test_recovered_degrees_are_true_degrees(self):
        g = caveman(4, 6, seed=1)
        result = MagsDMSummarizer(iterations=10, seed=3).summarize(g)
        engine = SummaryPageRank(result.representation)
        np.testing.assert_array_equal(
            engine._degrees, g.degrees().astype(float)
        )

    def test_work_proportional_to_representation(self):
        """Algorithm 7's operation count is O(|E| + |C|) per iteration
        — on a highly compressible graph the summary side touches far
        fewer index entries than the input side."""
        g = templated_web(600, 10, 60, 8, 0.01, seed=6)
        result = MagsDMSummarizer(iterations=15, seed=1).summarize(g)
        engine = SummaryPageRank(result.representation)
        summary_entries = (
            len(engine._edge_src)
            + len(engine._plus_x) * 2
            + len(engine._minus_x) * 2
        )
        input_entries = 2 * g.m
        assert summary_entries < 0.5 * input_entries


class TestPlantedPartitionAgreement:
    def test_full_pipeline_agreement(self):
        g = planted_partition(200, 10, 0.6, 0.02, seed=9)
        result = MagsDMSummarizer(iterations=12, seed=5).summarize(g)
        reference = np.array(pagerank_reference(g, 0.85, 10))
        summary = pagerank_summary(result.representation, 0.85, 10)
        np.testing.assert_allclose(summary, reference, rtol=1e-8)
