"""Crash recovery: checkpoint + WAL tail must retrace the live run.

The central contract: a server killed at *any* instant recovers, over
the acknowledged prefix of the stream, to a state bit-identical
(``Representation`` equality) to one that was never killed.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.durability import (
    WalCompactor,
    WriteAheadLog,
    engine_state,
    recover_engine,
    replay_tail,
    representation_to_state,
    state_to_representation,
)
from repro.graph import generators
from repro.resilience.checkpoint import CheckpointStore
from repro.service.ingest import MutableQueryEngine


@pytest.fixture(scope="module")
def rep():
    graph = generators.planted_partition(100, 5, 0.6, 0.04, seed=7)
    return (
        MagsDMSummarizer(iterations=8, seed=1)
        .summarize(graph)
        .representation
    )


def _dynamic(rep):
    from repro.dynamic.summary import DynamicGraphSummary

    return DynamicGraphSummary.from_representation(rep)


def _free_edge(rep):
    """A pair that is guaranteed not to be an edge of ``rep``."""
    edges = set(rep.reconstruct_edges())
    for u in range(rep.n):
        for v in range(u + 1, rep.n):
            if (u, v) not in edges:
                return u, v
    raise AssertionError("complete graph fixture")


def _mutation_script(rep, count=40, seed=11):
    """A deterministic applicable insert/delete sequence."""
    import random

    rng = random.Random(seed)
    edges = set(rep.reconstruct_edges())
    script = []
    for _ in range(count):
        if edges and rng.random() < 0.4:
            edge = rng.choice(sorted(edges))
            edges.discard(edge)
            script.append(("-", *edge))
        else:
            while True:
                u = rng.randrange(rep.n)
                v = rng.randrange(rep.n)
                if u != v and (min(u, v), max(u, v)) not in edges:
                    break
            edge = (min(u, v), max(u, v))
            edges.add(edge)
            script.append(("+", *edge))
    return script


class TestStateRoundtrip:
    def test_representation_roundtrip_is_exact(self, rep):
        state = representation_to_state(rep)
        assert state_to_representation(state) == rep

    def test_state_survives_json(self, rep):
        # JSON stringifies int dict keys; the state format must not
        # rely on any (that is why supernodes travel as pair lists).
        state = json.loads(json.dumps(representation_to_state(rep)))
        assert state_to_representation(state) == rep


class TestRecovery:
    def test_cold_start_without_checkpoint(self, rep, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        engine, pending, report = recover_engine(
            rep, wal, CheckpointStore(tmp_path / "ckpt"),
            engine_factory=MutableQueryEngine,
        )
        assert list(pending) == []
        assert engine.epoch == 0
        assert report.checkpoint_lsn == 0
        assert engine.representation == rep
        wal.close()

    def _run_with_crash(self, rep, tmp_path, script, cut):
        """Apply ``script[:cut]`` durably, 'crash', recover, apply the
        rest; returns the recovered engine."""
        wal = WriteAheadLog(tmp_path / "wal", fsync="never")
        store = CheckpointStore(tmp_path / "wal" / "ckpt")
        engine = MutableQueryEngine(_dynamic(rep), wal=wal)
        compactor = WalCompactor(engine, wal, store, interval=3600)
        for i, mutation in enumerate(script[:cut]):
            engine.ingest("s", i, [list(mutation)])
            if i == cut // 2:
                assert compactor.compact_now() is True
        wal.close()  # simulated kill: nothing else is flushed

        wal2 = WriteAheadLog(tmp_path / "wal", fsync="never")
        engine2, pending, report = recover_engine(
            rep, wal2, store,
            engine_factory=lambda d: MutableQueryEngine(d, wal=wal2),
        )
        replay_tail(engine2, pending, report)
        assert not engine2.replaying
        for i, mutation in enumerate(script[cut:], start=cut):
            engine2.ingest("s", i, [list(mutation)])
        wal2.close()
        return engine2, report

    def test_recovery_is_bit_identical_to_uninterrupted(
        self, rep, tmp_path
    ):
        script = _mutation_script(rep)
        uninterrupted = MutableQueryEngine(_dynamic(rep))
        for i, mutation in enumerate(script):
            uninterrupted.ingest("s", i, [list(mutation)])

        for cut in (0, 1, 19, len(script)):
            recovered, report = self._run_with_crash(
                rep, tmp_path / f"cut{cut}", script, cut
            )
            assert recovered.representation == uninterrupted.representation
            assert recovered.epoch == uninterrupted.epoch
            assert recovered._dedup["s"][0] == len(script) - 1
            if cut:
                assert report.describe().startswith("recovered from")

    def test_dedup_map_survives_recovery(self, rep, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        engine = MutableQueryEngine(_dynamic(rep), wal=wal)
        u, v = _free_edge(rep)
        result = engine.ingest("client-a", 5, [["+", u, v]])
        wal.close()

        wal2 = WriteAheadLog(tmp_path, fsync="never")
        engine2, pending, report = recover_engine(
            rep, wal2, CheckpointStore(tmp_path / "ckpt"),
            engine_factory=lambda d: MutableQueryEngine(d, wal=wal2),
        )
        replay_tail(engine2, pending, report)
        retry = engine2.ingest("client-a", 5, [["+", u, v]])
        assert retry == {**result, "duplicate": True}
        wal2.close()

    def test_corrupt_checkpoint_falls_back_to_older(self, rep, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        store = CheckpointStore(tmp_path / "ckpt", keep=5)
        engine = MutableQueryEngine(_dynamic(rep), wal=wal)
        compactor = WalCompactor(engine, wal, store, interval=3600)
        u, v = _free_edge(rep)
        engine.ingest("s", 0, [["+", u, v]])
        compactor.compact_now()
        engine.ingest("s", 1, [["-", u, v]])
        compactor.compact_now()
        wal.close()
        newest = sorted(store.directory.glob("ckpt-*.json"))[-1]
        newest.write_text(newest.read_text()[:-40])  # corrupt it

        wal2 = WriteAheadLog(tmp_path, fsync="never")
        engine2, pending, report = recover_engine(
            rep, wal2, store,
            engine_factory=lambda d: MutableQueryEngine(d, wal=wal2),
        )
        # Older checkpoint (lsn=1) + WAL tail (lsn=2) still recover
        # the full state.
        replay_tail(engine2, pending, report)
        assert engine2.applied_lsn == 2
        assert engine2.representation == engine.representation
        wal2.close()

    def test_dedup_fingerprint_survives_recovery(self, rep, tmp_path):
        """The checkpointed dedup map carries the batch content, so a
        recovered server still rejects the last seq replayed with
        *different* mutations (and still dedups the true retry)."""
        from repro.service.engine import QueryError

        store = CheckpointStore(tmp_path / "ckpt")
        engine = MutableQueryEngine(_dynamic(rep))
        u, v = _free_edge(rep)
        engine.ingest("s", 0, [["+", u, v]])
        store.save(json.loads(json.dumps(engine_state(engine))), step=1)

        engine2, pending, _ = recover_engine(
            rep, None, store, engine_factory=MutableQueryEngine
        )
        assert list(pending) == []
        assert engine2.ingest("s", 0, [["+", u, v]])["duplicate"] is True
        with pytest.raises(QueryError, match="reused with different"):
            engine2.ingest("s", 0, [["-", u, v]])

    def test_checkpoint_version_gate(self, rep, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        engine = MutableQueryEngine(_dynamic(rep))
        u, v = _free_edge(rep)
        engine.ingest("s", 0, [["+", u, v]])
        state = engine_state(engine)
        state["v"] = 99
        store.save(state, step=1)
        with pytest.raises(ValueError, match="checkpoint version"):
            recover_engine(
                rep, None, store, engine_factory=MutableQueryEngine
            )


class TestCompactor:
    def test_compaction_truncates_and_bounds_replay(self, rep, tmp_path):
        frame_budget = 256  # tiny segments force rotation
        wal = WriteAheadLog(
            tmp_path, fsync="never", segment_bytes=frame_budget
        )
        store = CheckpointStore(tmp_path / "ckpt")
        engine = MutableQueryEngine(_dynamic(rep), wal=wal)
        compactor = WalCompactor(engine, wal, store, interval=3600)
        script = _mutation_script(rep, count=30)
        for i, mutation in enumerate(script):
            engine.ingest("s", i, [list(mutation)])
        assert len(list(tmp_path.glob("wal-*.log"))) > 1
        assert compactor.compact_now() is True
        # Everything durable is in the checkpoint; only the active
        # segment remains and the replay tail from it is empty.
        assert len(list(tmp_path.glob("wal-*.log"))) == 1
        assert wal.records(after_lsn=engine.applied_lsn) == []
        # Idempotent: nothing new applied -> no new checkpoint.
        assert compactor.compact_now() is False
        wal.close()

    def test_compactor_skips_during_replay(self, rep, tmp_path):
        engine = MutableQueryEngine(_dynamic(rep))
        u, v = _free_edge(rep)
        engine.ingest("s", 0, [["+", u, v]])
        store = CheckpointStore(tmp_path / "ckpt")
        compactor = WalCompactor(engine, None, store, interval=3600)
        engine.replaying = True
        assert compactor.compact_now() is False
        engine.replaying = False
        assert compactor.compact_now() is True

    def test_background_thread_compacts(self, rep, tmp_path):
        import time

        wal = WriteAheadLog(tmp_path, fsync="never")
        store = CheckpointStore(tmp_path / "ckpt")
        engine = MutableQueryEngine(_dynamic(rep), wal=wal)
        compactor = WalCompactor(engine, wal, store, interval=0.05)
        compactor.start()
        try:
            u, v = _free_edge(rep)
            engine.ingest("s", 0, [["+", u, v]])
            deadline = time.monotonic() + 5.0
            while store.latest() is None:
                assert time.monotonic() < deadline, "no checkpoint cut"
                time.sleep(0.02)
        finally:
            compactor.stop()
            wal.close()
        assert store.latest().state["applied_lsn"] == 1
