"""Traces of real summarizer runs: phase names, order, accounting.

These tests pin the contract the paper's ablation figures rely on:
every algorithm's trace decomposes into the documented phases, phase
wall-times approximately account for the whole run, and iteration
progress events are present.
"""

import pytest

from repro import obs
from repro.algorithms.greedy import GreedySummarizer
from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.graph import generators


@pytest.fixture(autouse=True)
def restore_global_tracer():
    yield
    obs.stop_tracing()


@pytest.fixture
def graph():
    return generators.planted_partition(120, 8, 0.7, 0.03, seed=7)


def run_traced(summarizer, graph):
    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        result = summarizer.summarize(graph)
    return result, tracer.records()


def phase_sequence(records):
    """Phase names in start order (duplicates collapsed in order)."""
    spans = sorted(
        (r for r in records if r["name"].startswith("phase:")),
        key=lambda r: r["start_unix"],
    )
    out = []
    for record in spans:
        phase = record["attrs"]["phase"]
        if not out or out[-1] != phase:
            out.append(phase)
    return out


class TestMagsTrace:
    def test_phases_in_order(self, graph):
        __, records = run_traced(MagsSummarizer(iterations=3), graph)
        assert phase_sequence(records) == [
            "candidate_generation", "greedy_merge", "output",
        ]

    def test_root_span_attrs_and_counters(self, graph):
        result, records = run_traced(MagsSummarizer(iterations=3), graph)
        (root,) = [r for r in records if r["name"] == "summarize:Mags"]
        assert root["parent"] is None
        assert root["attrs"]["n"] == graph.n
        assert root["attrs"]["relative_size"] == pytest.approx(
            result.relative_size
        )
        assert root["counters"]["merges"] == result.num_merges

    def test_phase_walls_sum_to_total(self, graph):
        __, records = run_traced(MagsSummarizer(iterations=3), graph)
        (root,) = [r for r in records if r["name"] == "summarize:Mags"]
        phase_sum = sum(
            r["wall_s"] for r in records if r["name"].startswith("phase:")
        )
        total = root["wall_s"]
        assert phase_sum <= total + 1e-6
        assert abs(total - phase_sum) <= max(0.10 * total, 0.02)

    def test_iteration_events(self, graph):
        __, records = run_traced(MagsSummarizer(iterations=3), graph)
        merge_spans = [
            r for r in records
            if r["attrs"].get("phase") == "greedy_merge"
        ]
        events = [e for r in merge_spans for e in r["events"]]
        iteration_events = [e for e in events if e["name"] == "iteration"]
        assert iteration_events
        first = iteration_events[0]["attrs"]
        assert {"t", "threshold", "merges", "total_merges"} <= set(first)
        cg_spans = [
            r for r in records
            if r["attrs"].get("phase") == "candidate_generation"
        ]
        cg_events = [e for r in cg_spans for e in r["events"]]
        assert any(
            e["name"] == "candidates_generated" and e["attrs"]["pairs"] > 0
            for e in cg_events
        )

    def test_trace_validates(self, graph):
        __, records = run_traced(MagsSummarizer(iterations=3), graph)
        assert obs.validate_trace(records) == []


class TestMagsDMTrace:
    def test_phases_cover_all_and_order(self, graph):
        __, records = run_traced(MagsDMSummarizer(iterations=3), graph)
        sequence = phase_sequence(records)
        assert sequence[0] == "signatures"
        assert sequence[-1] == "output"
        assert set(sequence) == {"signatures", "divide", "merge", "output"}
        # Rounds alternate divide -> merge.
        middle = sequence[1:-1]
        assert middle == ["divide", "merge"] * (len(middle) // 2)

    def test_phase_walls_sum_to_total(self, graph):
        __, records = run_traced(MagsDMSummarizer(iterations=3), graph)
        (root,) = [r for r in records if r["name"] == "summarize:Mags-DM"]
        phase_sum = sum(
            r["wall_s"] for r in records if r["name"].startswith("phase:")
        )
        total = root["wall_s"]
        assert phase_sum <= total + 1e-6
        assert abs(total - phase_sum) <= max(0.10 * total, 0.02)

    def test_iteration_events_track_merges(self, graph):
        result, records = run_traced(MagsDMSummarizer(iterations=3), graph)
        events = [
            e
            for r in records
            if r["attrs"].get("phase") == "merge"
            for e in r["events"]
            if e["name"] == "iteration"
        ]
        assert len(events) == 3
        assert events[-1]["attrs"]["total_merges"] == result.num_merges
        assert all(
            {"t", "threshold", "groups", "candidates"} <= set(e["attrs"])
            for e in events
        )

    def test_parallel_merge_spans_nest_under_phase(self, graph):
        __, records = run_traced(
            MagsDMSummarizer(iterations=3, workers=2), graph
        )
        by_id = {r["span"]: r for r in records}
        pool_spans = [
            r for r in records if r["name"] == "parallel:merge_groups"
        ]
        assert pool_spans
        for record in pool_spans:
            parent = by_id[record["parent"]]
            assert parent["attrs"].get("phase") == "merge"
        assert obs.validate_trace(records) == []

    def test_phase_totals_match_result_phase_seconds(self, graph):
        result, records = run_traced(MagsDMSummarizer(iterations=3), graph)
        totals = obs.phase_totals(records)
        assert set(totals) == set(result.phase_seconds)
        for phase, seconds in totals.items():
            assert seconds == pytest.approx(
                result.phase_seconds[phase], rel=0.5, abs=0.02
            )


class TestRegistryRecording:
    def test_run_metrics_land_in_global_registry(self, graph):
        registry = obs.get_registry()
        registry.clear()
        try:
            result, __ = run_traced(GreedySummarizer(), graph)
            runs = registry.counter(
                "repro_summarize_runs_total", algorithm="Greedy"
            )
            merges = registry.counter(
                "repro_merges_total", algorithm="Greedy"
            )
            assert runs.value == 1
            assert merges.value == result.num_merges
            seconds = registry.histogram(
                "repro_summarize_seconds", algorithm="Greedy"
            )
            assert seconds.count == 1
            phase_families = registry.family("repro_phase_seconds")
            phases = {labels["phase"] for labels, __ in phase_families}
            assert "merge" in phases
        finally:
            registry.clear()

    def test_untraced_run_records_nothing(self, graph):
        registry = obs.get_registry()
        registry.clear()
        try:
            GreedySummarizer().summarize(graph)
            assert len(registry) == 0
        finally:
            registry.clear()
