"""SLO definitions, error-budget burn math, config loading, report."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    evaluate_slos,
    format_slo_report,
    load_slo_config,
)


def _snapshot(requests: int, errors: int, latencies: list[float]) -> dict:
    registry = MetricsRegistry()
    if requests:
        registry.counter("service_requests_total").inc(requests)
    if errors:
        registry.counter("service_errors_total").inc(errors)
    hist = registry.histogram("service_request_seconds", op="neighbors")
    for value in latencies:
        hist.observe(value)
    return registry.snapshot(samples=256)


class TestSLOValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SLO("x", "throughput", 1.0)

    def test_rejects_out_of_range_availability(self):
        with pytest.raises(ValueError):
            SLO("x", "availability", 0.0)
        with pytest.raises(ValueError):
            SLO("x", "availability", 1.5)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            SLO("x", "latency", 0.0)

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            SLO("x", "latency", 100.0, percentile=0.0)


class TestAvailability:
    def test_burn_is_error_ratio_over_allowed(self):
        # 2 errors / 400 requests = 0.5% observed vs 1% allowed.
        snapshots = {"a": _snapshot(400, 2, [0.001])}
        slo = SLO("avail", "availability", 0.99)
        (result,) = evaluate_slos(snapshots, [slo])
        assert result.ok
        assert result.actual == pytest.approx(0.995)
        assert result.budget_burn == pytest.approx(0.5)

    def test_violation_burns_over_one(self):
        snapshots = {"a": _snapshot(100, 5, [0.001])}
        slo = SLO("avail", "availability", 0.99)
        (result,) = evaluate_slos(snapshots, [slo])
        assert not result.ok
        assert result.budget_burn == pytest.approx(5.0)

    def test_sums_across_instances(self):
        snapshots = {
            "a": _snapshot(100, 0, [0.001]),
            "b": _snapshot(100, 1, [0.001]),
        }
        (result,) = evaluate_slos(
            snapshots, [SLO("avail", "availability", 0.99)]
        )
        assert result.actual == pytest.approx(0.995)

    def test_perfect_objective_with_errors_burns_infinite(self):
        snapshots = {"a": _snapshot(10, 1, [])}
        (result,) = evaluate_slos(
            snapshots, [SLO("avail", "availability", 1.0)]
        )
        assert not result.ok
        assert math.isinf(result.budget_burn)

    def test_no_data_is_a_vacuous_pass(self):
        (result,) = evaluate_slos(
            {"a": _snapshot(0, 0, [])}, [SLO("avail", "availability", 0.99)]
        )
        assert result.ok
        assert result.budget_burn == 0.0


class TestLatency:
    def test_burn_is_percentile_over_objective(self):
        snapshots = {"a": _snapshot(100, 0, [0.010] * 100)}
        slo = SLO("lat", "latency", objective=20.0, percentile=99.0)
        (result,) = evaluate_slos(snapshots, [slo])
        assert result.ok
        assert result.actual == pytest.approx(10.0)
        assert result.budget_burn == pytest.approx(0.5)

    def test_merges_across_instances(self):
        snapshots = {
            "fast": _snapshot(50, 0, [0.001] * 50),
            "slow": _snapshot(50, 0, [0.100] * 50),
        }
        slo = SLO("lat", "latency", objective=50.0, percentile=99.0)
        (result,) = evaluate_slos(snapshots, [slo])
        assert not result.ok  # slow instance's tail dominates p99
        assert result.actual == pytest.approx(100.0)
        assert result.budget_burn == pytest.approx(2.0)

    def test_op_filter_restricts_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("service_request_seconds", op="ping").observe(
            0.5
        )
        registry.histogram("service_request_seconds", op="khop").observe(
            0.001
        )
        snapshots = {"a": registry.snapshot(samples=16)}
        slo = SLO("khop", "latency", objective=10.0, op="khop")
        (result,) = evaluate_slos(snapshots, [slo])
        assert result.ok
        assert result.actual == pytest.approx(1.0)

    def test_no_observations_is_a_vacuous_pass(self):
        (result,) = evaluate_slos(
            {"a": _snapshot(0, 0, [])}, [SLO("lat", "latency", 10.0)]
        )
        assert result.ok


class TestTelemetryEntryInput:
    def test_accepts_full_telemetry_entries(self):
        telemetry = {
            "server": {
                "instance": "server",
                "pid": 1,
                "registry": _snapshot(10, 0, [0.001] * 10),
            }
        }
        results = evaluate_slos(telemetry, DEFAULT_SLOS)
        assert all(r.ok for r in results)


class TestConfigLoading:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            '{"slos": ['
            '{"name": "a", "kind": "availability", "objective": 0.999},'
            '{"name": "k", "kind": "latency", "objective": 250,'
            ' "percentile": 95, "op": "khop"}]}'
        )
        slos = load_slo_config(path)
        assert [s.name for s in slos] == ["a", "k"]
        assert slos[1].op == "khop"
        assert slos[1].percentile == 95.0

    @pytest.mark.parametrize(
        "doc",
        [
            "[]",
            "{}",
            '{"slos": []}',
            '{"slos": ["x"]}',
            '{"slos": [{"name": "a", "kind": "availability",'
            ' "objective": 0.9, "bogus": 1}]}',
            '{"slos": [{"name": "a", "kind": "nope", "objective": 1}]}',
            "not json",
        ],
    )
    def test_rejects_malformed(self, tmp_path, doc):
        path = tmp_path / "slo.json"
        path.write_text(doc)
        with pytest.raises(ValueError):
            load_slo_config(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError):
            load_slo_config(tmp_path / "absent.json")


class TestReport:
    def test_formats_ok_and_violated_rows(self):
        snapshots = {"a": _snapshot(100, 5, [0.010] * 100)}
        results = evaluate_slos(
            snapshots,
            [
                SLO("avail", "availability", 0.99),
                SLO("lat", "latency", 1000.0),
            ],
        )
        report = format_slo_report(results)
        assert "VIOLATED" in report
        assert "OK" in report
        assert "avail" in report and "lat" in report
