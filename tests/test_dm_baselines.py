"""Tests for the divide-and-merge baselines: SWeG, LDME, Randomized."""

import random

import pytest

from repro.algorithms._dm_common import (
    divide_by_single_hash,
    merge_group_superjaccard,
)
from repro.algorithms.ldme import LDMESummarizer
from repro.algorithms.randomized import RandomizedSummarizer
from repro.algorithms.sweg import SWeGSummarizer
from repro.core.minhash import MinHashSignatures
from repro.core.supernodes import SuperNodePartition
from repro.core.verify import verify_lossless
from repro.graph.generators import planted_partition


class TestSingleHashDividing:
    def test_groups_nontrivial(self, twin_graph):
        signatures = MinHashSignatures(twin_graph, 4, seed=1)
        groups = divide_by_single_hash(
            list(twin_graph.nodes()), signatures, 0
        )
        assert all(len(g) >= 2 for g in groups)
        # Twins share a MinHash, so they land in a common bucket.
        found = any(0 in g and 1 in g for g in groups)
        assert found

    def test_row_selects_function(self, community_graph):
        signatures = MinHashSignatures(community_graph, 4, seed=1)
        g0 = divide_by_single_hash(
            list(community_graph.nodes()), signatures, 0
        )
        g1 = divide_by_single_hash(
            list(community_graph.nodes()), signatures, 1
        )
        assert sorted(map(len, g0)) != sorted(map(len, g1)) or g0 != g1


class TestGroupMerging:
    def test_merges_twins_at_half_threshold(self, twin_graph):
        partition = SuperNodePartition(twin_graph)
        signatures = MinHashSignatures(twin_graph, 8, seed=2)
        merges = merge_group_superjaccard(
            partition, signatures, [0, 1], 0.5, random.Random(1)
        )
        assert merges == 1
        assert partition.find(0) == partition.find(1)

    def test_threshold_blocks_bad_merges(self, path_graph):
        partition = SuperNodePartition(path_graph)
        signatures = MinHashSignatures(path_graph, 8, seed=2)
        merges = merge_group_superjaccard(
            partition, signatures, [0, 3], 0.5, random.Random(1)
        )
        assert merges == 0

    def test_on_merge_callback(self, twin_graph):
        partition = SuperNodePartition(twin_graph)
        signatures = MinHashSignatures(twin_graph, 8, seed=2)
        events = []
        merge_group_superjaccard(
            partition, signatures, [0, 1], 0.4, random.Random(1),
            on_merge=lambda w, dead: events.append((w, dead)),
        )
        assert len(events) == 1


class TestSWeG:
    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            SWeGSummarizer(iterations=0)

    def test_compactness_improves_with_iterations(self):
        g = planted_partition(120, 8, 0.7, 0.03, seed=3)
        one = SWeGSummarizer(iterations=1, seed=3).summarize(g)
        many = SWeGSummarizer(iterations=15, seed=3).summarize(g)
        assert many.cost <= one.cost

    def test_phases_recorded(self, community_graph):
        result = SWeGSummarizer(iterations=3).summarize(community_graph)
        assert {"divide", "merge", "output"} <= set(result.phase_seconds)

    def test_params(self):
        assert SWeGSummarizer(iterations=7, seed=2).params() == {
            "seed": 2, "T": 7
        }


class TestLDME:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LDMESummarizer(iterations=0)
        with pytest.raises(ValueError):
            LDMESummarizer(signature_length=0)

    def test_longer_signatures_give_finer_groups(self, community_graph):
        """LDME's k-length signatures divide more finely than SWeG's
        single hash, which is where its speedup comes from."""
        coarse = LDMESummarizer(
            iterations=5, signature_length=1, seed=1
        ).summarize(community_graph)
        fine = LDMESummarizer(
            iterations=5, signature_length=4, seed=1
        ).summarize(community_graph)
        # Finer groups -> fewer merge opportunities per round.
        assert fine.num_merges <= coarse.num_merges

    def test_k1_close_to_sweg(self, community_graph):
        """With k=1, LDME's dividing degenerates to SWeG's."""
        ldme = LDMESummarizer(
            iterations=8, signature_length=1, seed=5
        ).summarize(community_graph)
        sweg = SWeGSummarizer(iterations=8, seed=5).summarize(
            community_graph
        )
        assert abs(ldme.cost - sweg.cost) <= 0.15 * community_graph.m

    def test_params(self):
        params = LDMESummarizer(
            iterations=7, signature_length=3, seed=2
        ).params()
        assert params == {"seed": 2, "T": 7, "k": 3}


class TestRandomized:
    def test_merges_twins(self, twin_graph):
        result = RandomizedSummarizer(seed=1).summarize(twin_graph)
        assert result.num_merges >= 3

    def test_never_worse_than_trivial(self, community_graph):
        result = RandomizedSummarizer(seed=1).summarize(community_graph)
        assert result.cost <= community_graph.m

    def test_different_seeds_may_differ(self, community_graph):
        a = RandomizedSummarizer(seed=1).summarize(community_graph)
        b = RandomizedSummarizer(seed=2).summarize(community_graph)
        # Not required to differ, but both must be valid; check costs
        # are in a sane band of each other (same algorithm).
        assert abs(a.cost - b.cost) < 0.2 * community_graph.m
