"""Tests for the pairwise cost calculus (Equation 2 / Section 2.2)."""

import pytest

from repro.core.costs import (
    pair_cost,
    potential_edges,
    potential_self_edges,
    self_cost,
    use_superedge,
)


class TestPotentialEdges:
    def test_cross_product(self):
        assert potential_edges(3, 4) == 12

    def test_singletons(self):
        assert potential_edges(1, 1) == 1

    def test_self_pairs(self):
        assert potential_self_edges(1) == 0
        assert potential_self_edges(2) == 1
        assert potential_self_edges(5) == 10


class TestPairCost:
    def test_no_edges_costs_nothing(self):
        assert pair_cost(12, 0) == 0

    def test_sparse_group_uses_plus_corrections(self):
        # 2 of 12 potential edges: cheaper to list both.
        assert pair_cost(12, 2) == 2

    def test_dense_group_uses_superedge(self):
        # 11 of 12: super-edge + 1 minus-correction = 2.
        assert pair_cost(12, 11) == 2

    def test_full_group_costs_one(self):
        assert pair_cost(12, 12) == 1

    def test_exact_balance_point(self):
        # pi=9, edges=5: superedge way = 9-5+1 = 5 = edges way.
        assert pair_cost(9, 5) == 5

    def test_single_potential_edge(self):
        assert pair_cost(1, 1) == 1

    def test_negative_edges_rejected(self):
        with pytest.raises(ValueError):
            pair_cost(4, -1)

    def test_more_edges_than_potential_rejected(self):
        with pytest.raises(ValueError):
            pair_cost(4, 5)

    @pytest.mark.parametrize("pi", [1, 2, 5, 10, 100])
    def test_cost_never_exceeds_either_encoding(self, pi):
        for edges in range(pi + 1):
            cost = pair_cost(pi, edges)
            assert cost <= edges or edges == 0
            if edges:
                assert cost <= pi - edges + 1


class TestSelfCost:
    def test_clique_interior(self):
        # K4 interior: pi=6, edges=6 -> one self super-edge.
        assert self_cost(4, 6) == 1

    def test_singleton_has_no_interior(self):
        assert self_cost(1, 0) == 0

    def test_sparse_interior(self):
        assert self_cost(4, 2) == 2


class TestUseSuperedge:
    def test_threshold_is_strict(self):
        # |E| > (1 + pi)/2  <=>  2|E| > pi + 1.
        assert not use_superedge(3, 2)  # 4 > 4 is false
        assert use_superedge(3, 3)

    def test_single_edge_pair(self):
        # pi=1, edges=1: 2 > 2 false -> plus-correction, cost 1 either way.
        assert not use_superedge(1, 1)

    def test_agreement_with_pair_cost(self):
        for pi in range(1, 30):
            for edges in range(1, pi + 1):
                superedge_cost = pi - edges + 1
                plus_cost = edges
                if use_superedge(pi, edges):
                    assert superedge_cost < plus_cost
                else:
                    assert plus_cost <= superedge_cost
