"""Tests for the Summarizer base plumbing (timing, budgets, results)."""

import time

import pytest

from repro.algorithms.base import (
    PhaseTimer,
    SummaryResult,
    Summarizer,
    TimeLimitExceeded,
)
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.algorithms.sweg import SWeGSummarizer
from repro.core.encoding import encode
from repro.core.supernodes import SuperNodePartition


class TestPhaseTimer:
    def test_accumulates_named_phases(self):
        timer = PhaseTimer()
        timer.start("a")
        time.sleep(0.01)
        timer.start("b")
        time.sleep(0.01)
        timer.stop()
        assert timer.phases["a"] > 0
        assert timer.phases["b"] > 0

    def test_same_phase_accumulates(self):
        timer = PhaseTimer()
        timer.start("x")
        time.sleep(0.005)
        timer.stop()
        first = timer.phases["x"]
        timer.start("x")
        time.sleep(0.005)
        timer.stop()
        assert timer.phases["x"] > first

    def test_stop_without_start_is_noop(self):
        timer = PhaseTimer()
        timer.stop()
        assert timer.phases == {}

    def test_budget_enforced(self):
        timer = PhaseTimer(time_limit=0.0)
        with pytest.raises(TimeLimitExceeded):
            timer.check_budget()

    def test_no_budget_never_raises(self):
        PhaseTimer(time_limit=None).check_budget()

    def test_total_increases(self):
        timer = PhaseTimer()
        first = timer.total
        time.sleep(0.005)
        assert timer.total > first


class TestSummaryResult:
    def _result(self, graph):
        rep = encode(SuperNodePartition(graph))
        return SummaryResult(
            algorithm="Demo",
            representation=rep,
            runtime_seconds=1.5,
            num_merges=0,
        )

    def test_properties_delegate(self, triangle):
        result = self._result(triangle)
        assert result.cost == result.representation.cost
        assert result.relative_size == pytest.approx(1.0)

    def test_summary_line_format(self, triangle):
        line = self._result(triangle).summary_line()
        assert line.startswith("Demo:")
        assert "relative_size=" in line
        assert "time=1.500s" in line


class TestSummarizerPlumbing:
    def test_extra_metrics_reset_between_runs(self, triangle, clique_graph):
        """A summarizer reused across graphs must not leak extra
        metrics from the previous run."""
        from repro.algorithms.slugger import SluggerSummarizer

        summarizer = SluggerSummarizer(iterations=3, seed=1)
        first = summarizer.summarize(clique_graph)
        second = summarizer.summarize(triangle)
        assert first.extra_metrics is not second.extra_metrics

    def test_reuse_is_deterministic(self, community_graph):
        summarizer = MagsDMSummarizer(iterations=5, seed=2)
        a = summarizer.summarize(community_graph)
        b = summarizer.summarize(community_graph)
        assert a.cost == b.cost

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SWeGSummarizer(iterations=50, time_limit=0.0),
            lambda: MagsDMSummarizer(iterations=50, time_limit=0.0),
        ],
    )
    def test_time_limits_propagate(self, factory, community_graph):
        with pytest.raises(TimeLimitExceeded):
            factory().summarize(community_graph)

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            Summarizer()
