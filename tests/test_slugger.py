"""Tests for the Slugger hierarchical baseline."""

import pytest

from repro.algorithms.slugger import (
    Dendrogram,
    SluggerSummarizer,
    hierarchical_intra_cost,
)
from repro.core.verify import verify_lossless
from repro.graph.generators import caveman, cliques_and_stars
from repro.graph.graph import Graph


class TestDendrogram:
    def test_leaves(self):
        d = Dendrogram(3)
        assert d.tree(0).is_leaf
        assert d.tree(0).members == [0]

    def test_record_builds_tree(self):
        d = Dendrogram(4)
        d.record(0, 1)
        d.record(0, 2)
        tree = d.tree(0)
        assert sorted(tree.members) == [0, 1, 2]
        assert not tree.is_leaf
        assert sorted(tree.left.members) == [0, 1]
        assert tree.right.members == [2]

    def test_absorbed_root_is_gone(self):
        d = Dendrogram(3)
        d.record(0, 1)
        with pytest.raises(KeyError):
            d.tree(1)


class TestHierarchicalIntraCost:
    def test_leaf_costs_nothing(self, triangle):
        d = Dendrogram(3)
        assert hierarchical_intra_cost(triangle, d.tree(0)) == 0

    def test_clique_prefers_self_superedge(self, clique_graph):
        d = Dendrogram(6)
        for v in range(1, 6):
            d.record(0, v)
        cost = hierarchical_intra_cost(clique_graph, d.tree(0))
        # One self super-edge + 2 hierarchy charge beats 15 plus-edges.
        assert cost == 3

    def test_sparse_interior_prefers_plus_edges(self, path_graph):
        d = Dendrogram(6)
        for v in range(1, 6):
            d.record(0, v)
        cost = hierarchical_intra_cost(path_graph, d.tree(0))
        assert cost == path_graph.m  # 5 plus-corrections, no hierarchy

    def test_nested_cliques_use_split(self):
        """Two cliques joined by one edge: the split option (encode
        each clique at its own subtree) must beat the flat options."""
        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        edges += [(i, j) for i in range(4, 8) for j in range(i + 1, 8)]
        edges.append((0, 4))
        g = Graph(8, edges)
        d = Dendrogram(8)
        for v in range(1, 4):
            d.record(0, v)
        for v in range(5, 8):
            d.record(4, v)
        d.record(0, 4)
        cost = hierarchical_intra_cost(g, d.tree(0))
        # Each clique: superedge 1 + charge 2; cross: one plus-edge.
        assert cost == 3 + 3 + 1
        # And it beats flat plus-encoding (13 edges).
        assert cost < g.m


class TestSlugger:
    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            SluggerSummarizer(iterations=0)

    def test_flat_representation_is_lossless(self, community_graph):
        result = SluggerSummarizer(iterations=6).summarize(community_graph)
        verify_lossless(community_graph, result.representation)

    def test_reports_hierarchical_metrics(self, community_graph):
        result = SluggerSummarizer(iterations=6).summarize(community_graph)
        assert "hierarchical_cost" in result.extra_metrics
        assert "hierarchical_relative_size" in result.extra_metrics
        assert result.extra_metrics["hierarchical_cost"] > 0

    def test_strong_compression_on_clique_composites(self):
        """The HO phenomenon (Section 6.2): clique-and-hierarchy
        structure is where the hierarchical model shines — its own
        measure compresses the composite by an order of magnitude."""
        g = cliques_and_stars(6, 10, 4, 8, seed=7)
        result = SluggerSummarizer(iterations=10, seed=7).summarize(g)
        # The exact |H| accounting links every member into its used
        # hierarchy node, so ~n containment links is the floor; the
        # composite still compresses several-fold under the measure.
        assert result.extra_metrics["hierarchical_relative_size"] < 0.5

    def test_caveman_compresses_well(self):
        g = caveman(5, 8, seed=3)
        result = SluggerSummarizer(iterations=10, seed=3).summarize(g)
        assert result.extra_metrics["hierarchical_relative_size"] < 0.5

    def test_phase_timings(self, community_graph):
        result = SluggerSummarizer(iterations=3).summarize(community_graph)
        assert {"divide", "merge", "encode"} <= set(result.phase_seconds)
