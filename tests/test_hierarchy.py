"""Tests for the materialised hierarchical representation (Slugger)."""

import pytest

from repro.algorithms.hierarchy import (
    HierarchicalRepresentation,
    HierarchyBuilder,
)
from repro.algorithms.slugger import SluggerSummarizer
from repro.graph.generators import (
    caveman,
    cliques_and_stars,
    planted_partition,
    templated_web,
)
from repro.graph.graph import Graph


class TestRepresentationSemantics:
    def test_positive_pair_expands_cartesian(self):
        rep = HierarchicalRepresentation(n=5, m=6)
        rep.leaves_of[5] = [0, 1]
        rep.leaves_of[6] = [2, 3, 4]
        rep.positive_edges.add((5, 6))
        assert rep.reconstruct_edges() == {
            (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)
        }

    def test_self_pair_expands_clique(self):
        rep = HierarchicalRepresentation(n=3, m=3)
        rep.leaves_of[3] = [0, 1, 2]
        rep.positive_edges.add((3, 3))
        assert rep.reconstruct_edges() == {(0, 1), (0, 2), (1, 2)}

    def test_negative_subtracts_after_positive(self):
        rep = HierarchicalRepresentation(n=4, m=3)
        rep.leaves_of[4] = [0, 1, 2, 3]
        rep.positive_edges.add((4, 4))
        rep.negative_edges.add((0, 1))
        edges = rep.reconstruct_edges()
        assert (0, 1) not in edges
        assert len(edges) == 5

    def test_leaf_level_pairs(self):
        rep = HierarchicalRepresentation(n=3, m=2)
        rep.positive_edges.add((0, 1))
        rep.positive_edges.add((1, 2))
        assert rep.reconstruct_edges() == {(0, 1), (1, 2)}

    def test_nested_negative_node_pair(self):
        rep = HierarchicalRepresentation(n=4, m=2)
        rep.leaves_of[4] = [0, 1]
        rep.leaves_of[5] = [2, 3]
        rep.positive_edges.add((4, 5))
        rep.negative_edges.add((4, 5))
        assert rep.reconstruct_edges() == set()


class TestHierarchyLinks:
    def test_unused_hierarchy_costs_nothing(self):
        rep = HierarchicalRepresentation(n=4, m=1)
        rep.leaves_of[4] = [0, 1]
        rep.positive_edges.add((2, 3))  # leaf-level only
        assert rep.hierarchy_links() == 0

    def test_used_node_pays_per_leaf(self):
        rep = HierarchicalRepresentation(n=4, m=6)
        rep.leaves_of[4] = [0, 1, 2, 3]
        rep.positive_edges.add((4, 4))
        assert rep.hierarchy_links() == 4

    def test_nested_used_nodes_charged_once(self):
        rep = HierarchicalRepresentation(n=4, m=6)
        rep.leaves_of[4] = [0, 1]
        rep.leaves_of[5] = [0, 1, 2, 3]
        rep.positive_edges.add((4, 4))
        rep.positive_edges.add((5, 5))
        # node 5 links: child node 4 + leaves 2, 3 = 3; node 4: 2 leaves.
        assert rep.hierarchy_links() == 5

    def test_cost_combines_all_three(self):
        rep = HierarchicalRepresentation(n=3, m=3)
        rep.leaves_of[3] = [0, 1, 2]
        rep.positive_edges.add((3, 3))
        rep.negative_edges.add((0, 1))
        assert rep.cost == 1 + 1 + 3

    def test_relative_size(self):
        rep = HierarchicalRepresentation(n=3, m=10)
        rep.positive_edges.add((0, 1))
        assert rep.relative_size == pytest.approx(0.1)

    def test_empty(self):
        rep = HierarchicalRepresentation(n=0, m=0)
        assert rep.cost == 0
        assert rep.relative_size == 0.0


class TestHierarchyBuilder:
    def test_node_reuse_by_leafset(self, triangle):
        builder = HierarchyBuilder(triangle)
        a = builder.node_for([0, 1])
        b = builder.node_for([1, 0])
        assert a == b

    def test_singleton_maps_to_leaf(self, triangle):
        builder = HierarchyBuilder(triangle)
        assert builder.node_for([2]) == 2

    def test_ids_start_after_leaves(self, triangle):
        builder = HierarchyBuilder(triangle)
        assert builder.node_for([0, 1]) == 3
        assert builder.node_for([1, 2]) == 4


class TestSluggerHierarchicalOutput:
    @pytest.mark.parametrize(
        "graph",
        [
            caveman(4, 6, seed=1),
            planted_partition(120, 8, 0.7, 0.03, seed=5),
            templated_web(200, 10, 30, 5, 0.1, seed=5),
            cliques_and_stars(4, 8, 3, 6, seed=2),
            Graph(5, []),
        ],
        ids=["caveman", "community", "web", "cliques", "edgeless"],
    )
    def test_hierarchical_reconstruction_exact(self, graph):
        summarizer = SluggerSummarizer(iterations=8, seed=3)
        summarizer.summarize(graph)
        hierarchical = summarizer.last_hierarchical
        assert hierarchical.reconstruct_edges() == graph.edge_set()

    def test_metrics_match_structure(self, community_graph):
        summarizer = SluggerSummarizer(iterations=8, seed=3)
        result = summarizer.summarize(community_graph)
        hierarchical = summarizer.last_hierarchical
        assert result.extra_metrics["hierarchical_cost"] == hierarchical.cost
        assert result.extra_metrics[
            "hierarchical_relative_size"
        ] == pytest.approx(hierarchical.relative_size)

    def test_hierarchy_reused_across_edges(self):
        """Cliques joined densely: the same hierarchy nodes should be
        endpoints of several positive edges (the reuse that makes the
        hierarchical model pay for itself)."""
        graph = cliques_and_stars(5, 8, 0, 1, seed=4)
        summarizer = SluggerSummarizer(iterations=10, seed=4)
        summarizer.summarize(graph)
        hierarchical = summarizer.last_hierarchical
        assert hierarchical.used_internal_nodes
        assert hierarchical.reconstruct_edges() == graph.edge_set()
