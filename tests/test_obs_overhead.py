"""Guard: tracing-disabled cost stays within 5% of obs-unimported.

The whole point of the ``sys.modules`` gate in
``repro.algorithms.base.active_tracer`` is that a process which never
imports ``repro.obs`` runs the pre-observability code paths untouched,
and one that imports it with the null tracer installed pays a dict
lookup per phase boundary.  This test measures both in one fresh
subprocess (so the import state is controlled) and fails if disabled
tracing regresses past ``base * 1.05 + 0.05s``.
"""

import json
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

_SCRIPT = r"""
import json
import sys
import time

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.graph import generators

graph = generators.planted_partition(200, 10, 0.6, 0.03, seed=3)


def best_of(k):
    times = []
    for __ in range(k):
        started = time.perf_counter()
        MagsDMSummarizer(iterations=5, seed=0).summarize(graph)
        times.append(time.perf_counter() - started)
    return min(times)


# Warm up interpreter/caches, then measure with repro.obs unimported.
best_of(1)
assert not any(m.startswith("repro.obs") for m in sys.modules), (
    "repro.obs leaked into the baseline import graph"
)
base = best_of(3)

# Import the whole observability layer; tracing stays disabled.
import repro.obs  # noqa: E402,F401

assert not repro.obs.get_tracer().enabled
disabled = best_of(3)

print(json.dumps({"base": base, "disabled": disabled}))
"""


def test_disabled_tracing_overhead_within_5_percent():
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": ""},
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    timings = json.loads(proc.stdout.strip().splitlines()[-1])
    base, disabled = timings["base"], timings["disabled"]
    assert disabled <= base * 1.05 + 0.05, (
        f"tracing-disabled run took {disabled:.4f}s vs "
        f"obs-unimported {base:.4f}s"
    )


_SERVICE_SCRIPT = r"""
import json
import time

from repro.core.encoding import encode
from repro.core.supernodes import SuperNodePartition
from repro.graph import generators
from repro.service import (
    QueryEngine,
    SummaryQueryServer,
    SummaryServiceClient,
)
import repro.service.server as server_mod

graph = generators.planted_partition(120, 6, 0.6, 0.05, seed=2)
rep = encode(SuperNodePartition(graph))

REQUESTS = 300
SWEEPS = 5


def bench(server_cls):
    engine = QueryEngine(rep, cache_size=256)
    with server_cls(engine, port=0, workers=2) as srv:
        host, port = srv.address
        with SummaryServiceClient(host, port) as client:
            client.ping()  # warm the connection + engine caches
            best = float("inf")
            for __ in range(SWEEPS):
                started = time.perf_counter()
                for q in range(REQUESTS):
                    client.neighbors(q % rep.n)
                best = min(best, time.perf_counter() - started)
    return best


class NoGateServer(server_mod.SummaryQueryServer):
    # ``_handle_line`` with the tracer gate removed — the
    # pre-observability request path, used as the overhead baseline.
    def _handle_line(self, line):
        try:
            request = server_mod.decode_line(line)
        except server_mod.ProtocolError as exc:
            self.metrics.protocol_rejected("frame")
            return server_mod._protocol_error(exc), False
        try:
            server_mod.validate_request(request)
        except server_mod.ProtocolError as exc:
            self.metrics.protocol_rejected("schema")
            return server_mod._schema_error(request, exc), False
        return self._handle_request(request)


bench(NoGateServer)  # warm-up
base = bench(NoGateServer)
disabled = bench(server_mod.SummaryQueryServer)
print(json.dumps({"base": base, "disabled": disabled}))
"""


def test_disabled_tracing_service_path_within_5_percent():
    """The per-request tracer gate (``get_tracer()`` + ``enabled``
    check) must be invisible on the untraced service bench: no
    ``trace`` field sent, no ``--trace-dir`` configured."""
    proc = subprocess.run(
        [sys.executable, "-c", _SERVICE_SCRIPT],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": ""},
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    timings = json.loads(proc.stdout.strip().splitlines()[-1])
    base, disabled = timings["base"], timings["disabled"]
    assert disabled <= base * 1.05 + 0.05, (
        f"disabled-tracing service path took {disabled:.4f}s vs "
        f"gate-free baseline {base:.4f}s for 300 requests"
    )


def test_algorithms_do_not_import_obs():
    """The algorithm layer must stay importable without repro.obs."""
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            (
                "import sys\n"
                "import repro.algorithms\n"
                "import repro.bench.runner\n"
                "import repro.distributed\n"
                "assert not any(m.startswith('repro.obs') "
                "for m in sys.modules), sorted(\n"
                "    m for m in sys.modules if m.startswith('repro.obs'))\n"
            ),
        ],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": ""},
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
