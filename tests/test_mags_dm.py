"""Tests for Mags-DM (Section 4) and its strategy ablations."""

import random

import pytest

import numpy as np

from repro.algorithms._dm_common import divide_recursive, shuffled_rows
from repro.algorithms.mags_dm import (
    MagsDMSummarizer,
    agreement_matrix,
    agreement_with,
)
from repro.algorithms.sweg import SWeGSummarizer
from repro.core.minhash import MinHashSignatures
from repro.core.verify import verify_lossless
from repro.graph.generators import planted_partition, templated_web
from repro.graph.graph import Graph


class TestDividingStrategy:
    def test_groups_respect_size_cap(self):
        g = templated_web(300, 4, 30, 5, 0.0, seed=1)
        signatures = MinHashSignatures(g, 12, seed=1)
        rng = random.Random(0)
        groups = divide_recursive(
            list(g.nodes()), signatures, shuffled_rows(12, rng), 20
        )
        # Groups may exceed the cap only when the hash pool cannot
        # split them (identical signatures).
        for group in groups:
            if len(group) > 20:
                col0 = signatures.sig[:, group[0]]
                assert all(
                    (signatures.sig[:, v] == col0).all() for v in group
                )

    def test_no_singleton_groups(self, community_graph):
        signatures = MinHashSignatures(community_graph, 8, seed=2)
        groups = divide_recursive(
            list(community_graph.nodes()), signatures,
            shuffled_rows(8, random.Random(1)), 50,
        )
        assert all(len(group) >= 2 for group in groups)

    def test_twins_end_up_together(self, twin_graph):
        signatures = MinHashSignatures(twin_graph, 8, seed=3)
        groups = divide_recursive(
            list(twin_graph.nodes()), signatures,
            shuffled_rows(8, random.Random(1)), 4,
        )
        twin_together = 0
        for group in groups:
            for i in range(4):
                if 2 * i in group and 2 * i + 1 in group:
                    twin_together += 1
        assert twin_together >= 2


class TestParameters:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            MagsDMSummarizer(iterations=0)
        with pytest.raises(ValueError):
            MagsDMSummarizer(b=0)
        with pytest.raises(ValueError):
            MagsDMSummarizer(h=0)
        with pytest.raises(ValueError):
            MagsDMSummarizer(max_group_size=1)
        with pytest.raises(ValueError):
            MagsDMSummarizer(node_selection="best")
        with pytest.raises(ValueError):
            MagsDMSummarizer(similarity="cosine")
        with pytest.raises(ValueError):
            MagsDMSummarizer(threshold="fixed")
        with pytest.raises(ValueError):
            MagsDMSummarizer(workers=0)

    def test_params_recorded(self, twin_graph):
        result = MagsDMSummarizer(iterations=3, b=4, h=16).summarize(
            twin_graph
        )
        assert result.params["b"] == 4
        assert result.params["h"] == 16
        assert result.params["T"] == 3


class TestMagsDM:
    def test_clique_collapses(self, clique_graph):
        result = MagsDMSummarizer(iterations=6).summarize(clique_graph)
        assert result.representation.num_supernodes == 1

    def test_twins_merged(self, twin_graph):
        result = MagsDMSummarizer(iterations=6).summarize(twin_graph)
        rep = result.representation
        merged = sum(
            rep.supernode_of(2 * i) == rep.supernode_of(2 * i + 1)
            for i in range(4)
        )
        assert merged >= 3

    def test_group_stats_collected(self, community_graph):
        dm = MagsDMSummarizer(iterations=5)
        dm.summarize(community_graph)
        assert len(dm.last_group_sizes) == 5

    def test_close_to_mags_compactness(self):
        """Paper: Mags-DM within ~2.1% of Greedy on small graphs."""
        from repro.algorithms.mags import MagsSummarizer

        g = planted_partition(150, 10, 0.7, 0.02, seed=8)
        mags = MagsSummarizer(iterations=20).summarize(g)
        dm = MagsDMSummarizer(iterations=20).summarize(g)
        assert dm.cost <= mags.cost * 1.15

    def test_parallel_workers_lossless(self, community_graph):
        result = MagsDMSummarizer(iterations=6, workers=4).summarize(
            community_graph
        )
        verify_lossless(community_graph, result.representation)


class TestAblations:
    @pytest.fixture(scope="class")
    def web_graph(self):
        return templated_web(400, 20, 50, 6, 0.1, seed=11)

    def test_no_dividing_strategy_runs(self, web_graph):
        result = MagsDMSummarizer(
            iterations=6, dividing_strategy=False
        ).summarize(web_graph)
        verify_lossless(web_graph, result.representation)

    def test_super_jaccard_variant_runs(self, web_graph):
        result = MagsDMSummarizer(
            iterations=6, similarity="super_jaccard"
        ).summarize(web_graph)
        verify_lossless(web_graph, result.representation)

    def test_theta_threshold_variant_runs(self, web_graph):
        result = MagsDMSummarizer(
            iterations=6, threshold="theta"
        ).summarize(web_graph)
        verify_lossless(web_graph, result.representation)

    def test_top1_selection_variant_runs(self, web_graph):
        result = MagsDMSummarizer(
            iterations=6, node_selection="top_1"
        ).summarize(web_graph)
        verify_lossless(web_graph, result.representation)

    def test_full_strategies_not_worse_than_none(self, web_graph):
        """Figures 9/10: the merging+dividing strategies should not
        lose to the SWeG-equivalent configuration."""
        full = MagsDMSummarizer(iterations=8, seed=4).summarize(web_graph)
        stripped = MagsDMSummarizer(
            iterations=8,
            seed=4,
            dividing_strategy=False,
            node_selection="top_1",
            similarity="super_jaccard",
            threshold="theta",
        ).summarize(web_graph)
        assert full.cost <= stripped.cost * 1.05

    def test_against_real_sweg(self, web_graph):
        """Mags-DM must be at least as compact as SWeG at equal T."""
        dm = MagsDMSummarizer(iterations=8, seed=4).summarize(web_graph)
        sweg = SWeGSummarizer(iterations=8, seed=4).summarize(web_graph)
        assert dm.cost <= sweg.cost * 1.05


class TestEdgeCases:
    def test_empty_graph(self):
        result = MagsDMSummarizer(iterations=3).summarize(Graph(0, []))
        assert result.cost == 0

    def test_edgeless_graph(self):
        result = MagsDMSummarizer(iterations=3).summarize(Graph(5, []))
        assert result.cost == 0
        assert result.representation.num_supernodes == 5

    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        result = MagsDMSummarizer(iterations=3).summarize(g)
        verify_lossless(g, result.representation)


class TestAgreementMatrixDtype:
    """Boundary tests for the int16 -> int32 promotion at h > 32767.

    Agreement counts go up to ``h``; with int16 accumulation an
    ``h = 32768`` group of identical columns would wrap to -32768 and
    demote perfectly similar pairs below every dissimilar one.
    """

    @staticmethod
    def _identical_cols(h, size=3):
        # All columns equal: every off-diagonal count must equal h.
        return np.tile(np.arange(h, dtype=np.uint64)[:, None], (1, size))

    def test_int16_at_boundary(self):
        h = np.iinfo(np.int16).max  # 32767: largest safe h for int16
        matrix = agreement_matrix(self._identical_cols(h))
        assert matrix.dtype == np.int16
        assert matrix[0, 1] == h
        assert (np.diagonal(matrix) == -1).all()

    def test_int32_above_boundary(self):
        h = np.iinfo(np.int16).max + 1  # 32768 would wrap in int16
        matrix = agreement_matrix(self._identical_cols(h))
        assert matrix.dtype == np.int32
        assert matrix[0, 1] == h  # not -32768
        assert (np.diagonal(matrix) == -1).all()

    def test_counts_correct_for_mixed_columns(self):
        h = 6
        cols = np.zeros((h, 3), dtype=np.uint64)
        cols[:, 1] = np.arange(h)  # agrees with col 0 only in row 0
        cols[:, 2] = 7  # agrees with nothing
        matrix = agreement_matrix(cols)
        assert matrix[0, 1] == matrix[1, 0] == 1
        assert matrix[0, 2] == matrix[2, 0] == 0
        assert matrix[1, 2] == matrix[2, 1] == 0

    def test_agreement_with_matches_matrix_column(self):
        rng = np.random.default_rng(5)
        cols = rng.integers(0, 4, size=(9, 6)).astype(np.uint64)
        matrix = agreement_matrix(cols)
        for index in range(cols.shape[1]):
            column = agreement_with(cols, index, matrix.dtype)
            assert column.dtype == matrix.dtype
            expected = matrix[:, index].copy()
            expected[index] = cols.shape[0]  # matrix pins diagonal to -1
            assert (column == expected).all()

    def test_large_h_summarize_smoke(self):
        # End to end with h just over the boundary on a tiny graph:
        # slow-ish (32768-row signatures) but well under a second.
        g = planted_partition(12, 3, 0.9, 0.05, seed=2)
        result = MagsDMSummarizer(iterations=2, h=32768).summarize(g)
        verify_lossless(g, result.representation)
