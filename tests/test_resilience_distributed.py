"""Distributed coordinator under injected worker faults."""

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.verify import verify_lossless
from repro.distributed.coordinator import DistributedSummarizer
from repro.graph import generators
from repro.resilience.faults import FaultInjector, FaultPlan, use_injector
from repro.resilience.retry import RetryPolicy


@pytest.fixture(scope="module")
def graph():
    return generators.planted_partition(200, 10, 0.6, 0.03, seed=9)


def _summarizer(workers=4, **kwargs):
    kwargs.setdefault(
        "retry_policy",
        RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01),
    )
    return DistributedSummarizer(
        workers=workers,
        summarizer_factory=lambda: MagsDMSummarizer(iterations=8, seed=2),
        refinement_rounds=5,
        seed=2,
        **kwargs,
    )


@pytest.fixture(scope="module")
def baseline(graph):
    return _summarizer().summarize(graph)


class TestWorkerRetry:
    def test_transient_crash_is_retried_to_identical_result(
        self, graph, baseline
    ):
        injector = FaultInjector(FaultPlan().crash("worker:1", times=1))
        with use_injector(injector):
            result = _summarizer().summarize(graph)
        assert injector.fired_count("worker:1") == 1
        assert result.worker_retries >= 1
        assert result.worker_failures == 0
        assert result.fallback_workers == []
        verify_lossless(graph, result.representation)
        # Retry reruns the same deterministic worker: nothing diverges.
        assert result.relative_size == baseline.relative_size
        assert result.upload_bytes == baseline.upload_bytes

    def test_crash_after_output_is_also_retried(self, graph, baseline):
        plan = FaultPlan().crash("worker:2", times=1, when="after")
        injector = FaultInjector(plan)
        with use_injector(injector):
            result = _summarizer().summarize(graph)
        assert injector.fired == [("worker:2", "crash_after")]
        assert result.worker_failures == 0
        assert result.relative_size == baseline.relative_size

    def test_straggler_delay_does_not_change_the_result(
        self, graph, baseline
    ):
        sleeps: list[float] = []
        injector = FaultInjector(
            FaultPlan().delay("worker:0", 0.5), sleep=sleeps.append
        )
        with use_injector(injector):
            result = _summarizer().summarize(graph)
        assert sleeps == [0.5]
        assert result.worker_retries == 0
        assert result.relative_size == baseline.relative_size


class TestWorkerFallback:
    def test_dead_worker_falls_back_to_singletons(self, graph, baseline):
        # times=10 > max_attempts: the worker dies on every attempt.
        injector = FaultInjector(FaultPlan().crash("worker:3", times=10))
        with use_injector(injector):
            result = _summarizer().summarize(graph)
        assert result.worker_failures == 1
        assert result.fallback_workers == [3]
        assert result.worker_retries >= 2  # two retries, then exhausted
        # Fallback is still a valid lossless partition...
        verify_lossless(graph, result.representation)
        # ...whose unmerged upload is accounted (singleton groups are
        # never smaller on the wire than merged ones).
        assert len(result.upload_bytes) == 4
        assert result.upload_bytes[3] >= baseline.upload_bytes[3]
        assert result.local_merges < baseline.local_merges

    def test_all_workers_dead_still_lossless(self, graph):
        plan = FaultPlan()
        for worker in range(3):
            plan.crash(f"worker:{worker}", times=10)
        with use_injector(FaultInjector(plan)):
            result = _summarizer(workers=3).summarize(graph)
        assert result.worker_failures == 3
        assert result.fallback_workers == [0, 1, 2]
        assert result.local_merges == 0
        verify_lossless(graph, result.representation)

    def test_zero_worker_deadline_forces_immediate_fallback(self, graph):
        # An already-expired deadline budget: no attempt is even made.
        result = _summarizer(worker_deadline=-1.0).summarize(graph)
        assert result.worker_failures == 4
        assert result.fallback_workers == [0, 1, 2, 3]
        verify_lossless(graph, result.representation)

    def test_worker_events_counted_in_obs_registry(self, graph):
        from repro.obs.metrics import get_registry

        fallback_counter = get_registry().counter(
            "repro_resilience_worker_events_total", event="fallback"
        )
        before = fallback_counter.value
        injector = FaultInjector(FaultPlan().crash("worker:0", times=10))
        with use_injector(injector):
            _summarizer().summarize(graph)
        assert fallback_counter.value == before + 1


class TestDeterminism:
    def test_same_plan_same_seed_reproduces_exactly(self, graph):
        def run():
            injector = FaultInjector(
                FaultPlan()
                .crash("worker:1", times=1)
                .crash("worker:2", times=10),
                seed=7,
            )
            with use_injector(injector):
                result = _summarizer().summarize(graph)
            return injector.fired, result

        fired_a, result_a = run()
        fired_b, result_b = run()
        assert fired_a == fired_b
        assert result_a.relative_size == result_b.relative_size
        assert result_a.upload_bytes == result_b.upload_bytes
        assert result_a.fallback_workers == result_b.fallback_workers

    def test_fault_free_run_reports_no_resilience_events(
        self, graph, baseline
    ):
        assert baseline.worker_retries == 0
        assert baseline.worker_failures == 0
        assert baseline.fallback_workers == []
