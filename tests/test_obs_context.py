"""Trace-context propagation: wire field validation, protocol
whitelisting, and in-process server adoption + echo."""

import pytest

from repro import obs
from repro.core.encoding import encode
from repro.core.supernodes import SuperNodePartition
from repro.graph import generators
from repro.obs.context import (
    TRACE_ID_MAX_LEN,
    TraceContext,
    new_trace_id,
    validate_trace_field,
)
from repro.service import (
    QueryEngine,
    SummaryQueryServer,
    SummaryServiceClient,
)
from repro.service.protocol import (
    ProtocolError,
    validate_request,
    validate_response,
)


@pytest.fixture(autouse=True)
def restore_global_tracer():
    yield
    obs.stop_tracing()


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext(trace_id="abc123", parent_span_id="f" * 16)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_wire_round_trip_without_span(self):
        ctx = TraceContext(trace_id="abc123")
        wire = ctx.to_wire()
        assert "span" not in wire
        assert TraceContext.from_wire(wire) == ctx

    def test_new_ids_are_valid_and_distinct(self):
        ids = {new_trace_id() for _ in range(32)}
        assert len(ids) == 32
        for trace_id in ids:
            validate_trace_field({"id": trace_id})

    def test_from_span_carries_both_ids(self):
        tracer = obs.Tracer()
        with tracer.span("root") as span:
            ctx = TraceContext.from_span(span)
        assert ctx.trace_id == span.trace_id
        assert ctx.parent_span_id == span.span_id


class TestValidateTraceField:
    @pytest.mark.parametrize(
        "bad",
        [
            "not-a-dict",
            42,
            [],
            None,
            {},
            {"span": "f" * 16},
            {"id": 123},
            {"id": ""},
            {"id": "x" * (TRACE_ID_MAX_LEN + 1)},
            {"id": "bad id!"},
            {"id": "ok", "span": 7},
            {"id": "ok", "span": "nope nope"},
            {"id": "ok", "extra": "field"},
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_trace_field(bad)

    def test_accepts_minimal_and_full(self):
        validate_trace_field({"id": "a"})
        validate_trace_field({"id": "A-b_c.9" * 8})
        validate_trace_field({"id": "a" * TRACE_ID_MAX_LEN, "span": "b"})


class TestProtocolWhitelisting:
    def test_trace_allowed_on_every_op(self):
        trace = {"id": "0123abcd"}
        validate_request({"id": 1, "op": "ping", "trace": trace})
        validate_request(
            {"id": 2, "op": "khop", "node": 0, "k": 2, "trace": trace}
        )
        validate_request({"id": 3, "op": "telemetry", "trace": trace})

    def test_malformed_trace_is_a_schema_error(self):
        with pytest.raises(ProtocolError):
            validate_request({"id": 1, "op": "ping", "trace": "junk"})
        with pytest.raises(ProtocolError):
            validate_request(
                {"id": 1, "op": "ping", "trace": {"id": "a", "x": 1}}
            )

    def test_telemetry_rejects_extra_fields(self):
        validate_request({"id": 1, "op": "telemetry"})
        with pytest.raises(ProtocolError):
            validate_request({"id": 1, "op": "telemetry", "node": 0})

    def test_response_trace_echo_validates(self):
        validate_response(
            {
                "id": 1,
                "ok": True,
                "result": "pong",
                "trace": {"id": "abc", "span": "def"},
            }
        )
        with pytest.raises(ProtocolError):
            validate_response(
                {"id": 1, "ok": True, "result": "pong", "trace": "abc"}
            )


@pytest.fixture(scope="module")
def server():
    graph = generators.planted_partition(60, 4, 0.5, 0.05, seed=0)
    engine = QueryEngine(encode(SuperNodePartition(graph)), cache_size=64)
    with SummaryQueryServer(engine, port=0, workers=2) as srv:
        yield srv


class TestServerAdoption:
    def test_adopts_context_and_echoes_it(self, server):
        tracer = obs.start_tracing()
        trace_id = new_trace_id()
        host, port = server.address
        with SummaryServiceClient(host, port) as client:
            response = client.request_raw(
                {
                    "id": 1,
                    "op": "neighbors",
                    "node": 3,
                    "trace": {"id": trace_id},
                }
            )
        assert response["ok"] is True
        assert response["trace"]["id"] == trace_id
        records = [r for r in tracer.records() if r["trace"] == trace_id]
        assert [r["name"] for r in records] == ["service:request"]
        assert records[0]["span"] == response["trace"]["span"]
        assert records[0]["parent"] is None

    def test_parent_span_id_adopted(self, server):
        tracer = obs.start_tracing()
        trace_id, parent = new_trace_id(), new_trace_id()
        host, port = server.address
        with SummaryServiceClient(host, port) as client:
            client.request_raw(
                {
                    "id": 1,
                    "op": "ping",
                    "trace": {"id": trace_id, "span": parent},
                }
            )
        (record,) = [
            r for r in tracer.records() if r["trace"] == trace_id
        ]
        assert record["parent"] == parent

    def test_untraced_request_gets_no_echo(self, server):
        obs.start_tracing()
        host, port = server.address
        with SummaryServiceClient(host, port) as client:
            response = client.request_raw({"id": 1, "op": "ping"})
        assert response["ok"] is True
        assert "trace" not in response

    def test_telemetry_op_round_trips(self, server):
        host, port = server.address
        with SummaryServiceClient(host, port) as client:
            telemetry = client.telemetry()
        assert isinstance(telemetry["pid"], int)
        assert isinstance(telemetry["instance"], str)
        assert "service_requests_total" in telemetry["registry"]
