"""Background compactness maintenance: selection, passes, durability.

The tentpole contract: a maintenance pass commits exactly like a
mutation batch (WAL record first, epoch bump, cache invalidation),
interleaves safely with ingest (abandon on epoch movement, never a
torn state), and replays bit-identically after a crash — while the
corrections overlay's exact edge set is preserved at every epoch.
"""

from __future__ import annotations

import tempfile
from collections import OrderedDict
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.durability import (
    ResummarizeRecord,
    WalCompactor,
    WriteAheadLog,
    engine_state,
    recover_engine,
    replay_tail,
)
from repro.dynamic.maintenance import MaintenanceTask, select_targets
from repro.dynamic.summary import DynamicGraphSummary
from repro.graph import generators
from repro.graph.graph import Graph
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.guard import ResourceBudget
from repro.service.ingest import MutableQueryEngine

_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def rep():
    graph = generators.planted_partition(120, 6, 0.6, 0.04, seed=7)
    return (
        MagsDMSummarizer(iterations=8, seed=1)
        .summarize(graph)
        .representation
    )


def _factory():
    return MagsDMSummarizer(iterations=8, seed=1)


def _engine(rep, **kwargs):
    return MutableQueryEngine(
        DynamicGraphSummary.from_representation(
            rep, summarizer_factory=_factory
        ),
        **kwargs,
    )


def _mutation_script(rep, count=40, seed=11):
    import random

    rng = random.Random(seed)
    edges = set(rep.reconstruct_edges())
    script = []
    for _ in range(count):
        if edges and rng.random() < 0.4:
            edge = rng.choice(sorted(edges))
            edges.discard(edge)
            script.append(("-", *edge))
        else:
            while True:
                u = rng.randrange(rep.n)
                v = rng.randrange(rep.n)
                if u != v and (min(u, v), max(u, v)) not in edges:
                    break
            edge = (min(u, v), max(u, v))
            edges.add(edge)
            script.append(("+", *edge))
    return script


def _ingest_all(engine, script, batch=5, stream="s"):
    for seq, start in enumerate(range(0, len(script), batch)):
        chunk = [list(op) for op in script[start:start + batch]]
        ack = engine.ingest(stream, seq, chunk)
        assert ack["applied"] == len(chunk), ack


# ----------------------------------------------------------------------
# Target selection
# ----------------------------------------------------------------------
class TestSelectTargets:
    def test_empty_dirty_selects_nothing(self, rep):
        assert select_targets({}, rep) == ()

    def test_min_dirty_filters(self, rep):
        sid = next(iter(rep.supernodes))
        assert select_targets({sid: 1}, rep, min_dirty=2) == ()

    def test_dirtiest_seed_and_neighbors_selected(self, rep):
        adjacency = rep.superedge_adjacency()
        sid = max(adjacency, key=lambda s: len(adjacency[s]))
        targets = select_targets({sid: 5}, rep, max_supernodes=64)
        assert sid in targets
        assert set(adjacency[sid]) - {sid} <= set(targets)

    def test_cap_respected_and_sorted(self, rep):
        dirty = {sid: 1 + sid % 3 for sid in rep.supernodes}
        targets = select_targets(dirty, rep, max_supernodes=4)
        assert len(targets) == 4
        assert list(targets) == sorted(targets)

    def test_deterministic(self, rep):
        dirty = {sid: 1 + sid % 5 for sid in rep.supernodes}
        assert select_targets(dirty, rep, max_supernodes=10) == (
            select_targets(dict(reversed(dirty.items())), rep,
                           max_supernodes=10)
        )


# ----------------------------------------------------------------------
# One pass on a live engine
# ----------------------------------------------------------------------
class TestMaintenancePass:
    def test_idle_when_clean(self, rep):
        engine = _engine(rep)
        result = engine.maintenance_pass()
        assert result["outcome"] == "idle"

    def test_committed_pass_bumps_epoch_and_clears_dirt(self, rep):
        engine = _engine(rep)
        _ingest_all(engine, _mutation_script(rep, count=40))
        dirty_before = engine._dynamic.dirty_supernodes()
        assert dirty_before
        epoch_before = engine.epoch
        result = engine.maintenance_pass(max_supernodes=1024)
        assert result["outcome"] == "committed"
        assert result["processed"] >= len(dirty_before)
        assert engine.epoch == epoch_before + 1
        assert engine._dynamic.dirty_supernodes() == {}
        stats = engine.maintenance_stats()
        assert stats["passes"] == 1
        assert stats["dirty_supernodes"] == 0

    def test_pass_preserves_exact_edge_set(self, rep):
        engine = _engine(rep)
        script = _mutation_script(rep, count=40)
        _ingest_all(engine, script)
        before = set(engine._dynamic.to_representation().reconstruct_edges())
        engine.maintenance_pass(max_supernodes=1024)
        after = set(engine._dynamic.to_representation().reconstruct_edges())
        assert after == before

    def test_partial_pass_carries_remaining_dirt(self, rep):
        engine = _engine(rep)
        _ingest_all(engine, _mutation_script(rep, count=40))
        total_before = sum(engine._dynamic.dirty_supernodes().values())
        result = engine.maintenance_pass(max_supernodes=2)
        assert result["outcome"] == "committed"
        remaining = engine._dynamic.dirty_supernodes()
        # Some dirt must survive the tiny pass, and no count may grow.
        assert remaining
        assert sum(remaining.values()) < total_before

    def test_interleaved_commit_abandons_pass(self, rep, monkeypatch):
        engine = _engine(rep)
        _ingest_all(engine, _mutation_script(rep, count=20))
        original = DynamicGraphSummary.resummarize_local

        def racing(self, targets=None, budget=None):
            # A mutation batch lands while the scratch build runs
            # outside the lock (self is the scratch, not the live
            # overlay, so the ingest below does not deadlock).
            if self is not engine._dynamic:
                engine.ingest("racer", 0, [["+", 0, 1]])
            return original(self, targets=targets, budget=budget)

        monkeypatch.setattr(
            DynamicGraphSummary, "resummarize_local", racing
        )
        result = engine.maintenance_pass()
        assert result["outcome"] == "abandoned"
        assert engine.maintenance_stats()["abandoned"] == 1
        # The interleaved mutation itself must be untouched.
        assert (0, 1) in engine._dynamic.to_representation().additions or (
            (0, 1) in set(
                engine._dynamic.to_representation().reconstruct_edges()
            )
        )

    def test_skipped_while_replaying(self, rep):
        engine = _engine(rep)
        engine.replaying = True
        assert engine.maintenance_pass()["outcome"] == "skipped"

    def test_pass_invalidates_affected_neighbor_cache(self, rep):
        engine = _engine(rep)
        script = _mutation_script(rep, count=40)
        _ingest_all(engine, script)
        cached = {
            node: engine.neighbors(node) for node in range(rep.n)
        }
        engine.maintenance_pass(max_supernodes=1024)
        for node in range(rep.n):
            assert engine.neighbors(node) == cached[node]

    def test_stats_op_reports_maintenance_section(self, rep):
        engine = _engine(rep)
        response = engine.query({"id": 1, "op": "stats"})
        assert response["ok"], response
        section = response["result"]["maintenance"]
        assert section["passes"] == 0
        assert "dirty_supernodes" in section
        assert "relative_size" in section


# ----------------------------------------------------------------------
# The timer task
# ----------------------------------------------------------------------
class TestMaintenanceTask:
    def test_run_once_drains_to_idle(self, rep):
        engine = _engine(rep)
        _ingest_all(engine, _mutation_script(rep, count=40))
        task = MaintenanceTask(
            engine, interval=60.0, max_supernodes=16, max_passes=64
        )
        result = task.run_once()
        assert result["outcome"] == "idle"
        assert result["passes"] >= 1
        assert engine._dynamic.dirty_supernodes() == {}

    def test_budget_merge_cap_recorded_per_pass(self, rep):
        with tempfile.TemporaryDirectory() as tmp:
            wal = WriteAheadLog(tmp, fsync="never")
            engine = _engine(rep, wal=wal)
            _ingest_all(engine, _mutation_script(rep, count=30))
            task = MaintenanceTask(
                engine,
                interval=60.0,
                budget=ResourceBudget(max_merges=64),
                max_supernodes=16,
                max_passes=64,
            )
            task.run_once()
            wal.close()
            wal = WriteAheadLog(tmp, fsync="never")
            resum = [
                r for r in wal.records(after_lsn=0)
                if isinstance(r, ResummarizeRecord)
            ]
            wal.close()
            assert resum
            assert all(r.max_merges == 64 for r in resum)

    def test_start_requires_positive_interval(self, rep):
        with pytest.raises(ValueError):
            MaintenanceTask(_engine(rep), interval=0)


# ----------------------------------------------------------------------
# WAL + recovery
# ----------------------------------------------------------------------
class TestResummarizeDurability:
    def test_resummarize_record_roundtrip(self):
        with tempfile.TemporaryDirectory() as tmp:
            wal = WriteAheadLog(tmp, fsync="never")
            wal.append("s", 0, [("+", 1, 2)])
            lsn = wal.append_resummarize((7, 3, 9), max_merges=10)
            wal.append_resummarize((4,))
            wal.close()
            wal = WriteAheadLog(tmp, fsync="never")
            records = list(wal.records(after_lsn=0))
            wal.close()
        assert lsn == 2
        assert isinstance(records[1], ResummarizeRecord)
        # Target order is preserved verbatim — replay must see exactly
        # what the pass recorded (select_targets already canonicalizes).
        assert records[1].targets == (7, 3, 9)
        assert records[1].max_merges == 10
        assert records[2].targets == (4,)
        assert records[2].max_merges is None

    def test_recovery_replays_maintenance_bit_identically(self, rep):
        script = _mutation_script(rep, count=60)
        with tempfile.TemporaryDirectory() as tmp:
            wal = WriteAheadLog(tmp, fsync="never")
            engine = _engine(rep, wal=wal)
            for seq, start in enumerate(range(0, len(script), 5)):
                chunk = [list(op) for op in script[start:start + 5]]
                engine.ingest("s", seq, chunk)
                if seq % 3 == 2:
                    engine.maintenance_pass(max_supernodes=8)
            engine.maintenance_pass(max_supernodes=1024)
            wal.close()

            wal2 = WriteAheadLog(tmp, fsync="never")
            recovered, pending, report = recover_engine(
                rep, wal2, None,
                engine_factory=lambda d: MutableQueryEngine(d, wal=wal2),
            )
            recovered._dynamic._make_summarizer = _factory
            replay_tail(recovered, pending, report)
            wal2.close()
        assert recovered.representation == engine.representation
        assert recovered.epoch == engine.epoch
        assert recovered.applied_lsn == engine.applied_lsn
        assert (
            recovered._dynamic.dirty_supernodes()
            == engine._dynamic.dirty_supernodes()
        )
        assert recovered._dynamic.base_cost == engine._dynamic.base_cost

    def test_checkpoint_cut_mid_maintenance_tail(self, rep):
        """Recovering from a checkpoint cut anywhere in a tail that
        contains resummarize records matches the straight replay."""
        script = _mutation_script(rep, count=40)
        with tempfile.TemporaryDirectory() as tmp:
            wal = WriteAheadLog(tmp, fsync="never")
            engine = _engine(rep, wal=wal)
            for seq, start in enumerate(range(0, len(script), 4)):
                chunk = [list(op) for op in script[start:start + 4]]
                engine.ingest("s", seq, chunk)
                if seq % 2 == 1:
                    engine.maintenance_pass(max_supernodes=6)
            wal.close()
            wal = WriteAheadLog(tmp, fsync="never")
            records = list(wal.records(after_lsn=0))
            wal.close()

            def replayed(tail, store=None):
                eng, pending, rpt = recover_engine(
                    rep, None, store,
                    engine_factory=lambda d: MutableQueryEngine(d),
                )
                eng._dynamic._make_summarizer = _factory
                replay_tail(eng, list(tail), rpt)
                return eng

            straight = replayed(records)
            for cut in (1, len(records) // 2, len(records) - 1):
                prefix = replayed(records[:cut])
                store = CheckpointStore(Path(tmp) / f"cut-{cut}")
                store.save(
                    engine_state(prefix), step=prefix.applied_lsn
                )
                resumed, pending, rpt = recover_engine(
                    rep, None, store,
                    engine_factory=lambda d: MutableQueryEngine(d),
                )
                resumed._dynamic._make_summarizer = _factory
                replay_tail(resumed, records[cut:], rpt)
                assert resumed.representation == straight.representation
                assert resumed.epoch == straight.epoch
                assert (
                    resumed._dynamic.dirty_supernodes()
                    == straight._dynamic.dirty_supernodes()
                )

    def test_old_resummarize_records_skipped_below_checkpoint(self, rep):
        engine = _engine(rep)
        engine.applied_lsn = 5
        record = ResummarizeRecord(lsn=3, targets=(1,), max_merges=None)
        assert engine.replay_record(record) is False


# ----------------------------------------------------------------------
# Dedup LRU (satellite 1)
# ----------------------------------------------------------------------
class TestDedupLRU:
    @pytest.fixture()
    def empty_rep(self):
        # No edges: every "+" mutation below is guaranteed applicable.
        return (
            MagsDMSummarizer(iterations=2, seed=0)
            .summarize(Graph(16, []))
            .representation
        )

    def test_eviction_at_capacity_with_metric(self, empty_rep):
        engine = _engine(empty_rep, dedup_capacity=2)
        engine.ingest("a", 0, [["+", 0, 1]])
        engine.ingest("b", 0, [["+", 0, 2]])
        engine.ingest("c", 0, [["+", 0, 3]])
        assert set(engine._dedup) == {"b", "c"}
        evictions = engine.metrics.registry.counter(
            "repro_ingest_dedup_evictions_total"
        ).value
        assert evictions == 1

    def test_duplicate_read_does_not_refresh_recency(self, empty_rep):
        engine = _engine(empty_rep, dedup_capacity=2)
        engine.ingest("a", 0, [["+", 0, 1]])
        engine.ingest("b", 0, [["+", 0, 2]])
        # A duplicate retry of "a" must NOT move it to the back:
        # eviction order stays a pure function of the commit sequence
        # (and therefore of the WAL).
        dup = engine.ingest("a", 0, [["+", 0, 1]])
        assert dup.get("duplicate") is True
        engine.ingest("c", 0, [["+", 0, 3]])
        assert set(engine._dedup) == {"b", "c"}

    def test_unbounded_when_capacity_zero(self, empty_rep):
        engine = _engine(empty_rep, dedup_capacity=0)
        for i in range(10):
            engine.ingest(f"s{i}", 0, [["+", 0, i + 1]])
        assert len(engine._dedup) == 10

    def test_checkpoint_roundtrip_preserves_eviction_order(self, empty_rep):
        with tempfile.TemporaryDirectory() as tmp:
            engine = _engine(empty_rep, dedup_capacity=3)
            for i, stream in enumerate("abc"):
                engine.ingest(stream, 0, [["+", 0, i + 1]])
            state = engine_state(engine)
            assert state["v"] == 4
            store = CheckpointStore(tmp)
            store.save(state, step=1)
            recovered, _, _ = recover_engine(
                empty_rep, None, store,
                engine_factory=lambda d: MutableQueryEngine(
                    d, dedup_capacity=3
                ),
            )
            assert isinstance(recovered._dedup, OrderedDict)
            assert list(recovered._dedup) == list(engine._dedup)
            # One more commit past capacity evicts the oldest ("a").
            recovered.ingest("d", 0, [["+", 0, 9]])
            assert set(recovered._dedup) == {"b", "c", "d"}

    def test_v2_checkpoint_still_loads_and_derives_dirtiness(self, empty_rep):
        with tempfile.TemporaryDirectory() as tmp:
            engine = _engine(empty_rep)
            _ingest_all(engine, _mutation_script(empty_rep, count=10))
            state = engine_state(engine)
            state["v"] = 2
            del state["dirty"]
            store = CheckpointStore(tmp)
            store.save(state, step=engine.applied_lsn)
            recovered, _, _ = recover_engine(
                empty_rep, None, store,
                engine_factory=lambda d: MutableQueryEngine(d),
            )
        derived = recovered._dynamic.dirty_supernodes()
        # One touch per correction endpoint: enough signal for
        # maintenance to find the drifted regions after an upgrade.
        live = set(engine._dynamic.dirty_supernodes())
        assert set(derived) <= live
        assert derived


# ----------------------------------------------------------------------
# Compactor seeding (satellite 2)
# ----------------------------------------------------------------------
class TestCompactorSeeding:
    def test_seeded_compactor_skips_recovered_prefix(self, rep):
        with tempfile.TemporaryDirectory() as tmp:
            wal = WriteAheadLog(tmp, fsync="never")
            store = CheckpointStore(Path(tmp) / "ck")
            engine = _engine(rep, wal=wal)
            engine.ingest("s", 0, [["+", 0, 1]])
            lsn = engine.applied_lsn
            seeded = WalCompactor(
                engine, wal, store, interval=30.0, last_lsn=lsn
            )
            # Nothing new since the "recovered checkpoint": no re-cut.
            assert seeded.compact_now() is False
            assert store.latest() is None
            # New work past the seed compacts normally.
            engine.ingest("s", 1, [["+", 0, 2]])
            assert seeded.compact_now() is True
            assert store.latest().state["applied_lsn"] == lsn + 1
            wal.close()

    def test_unseeded_compactor_recuts_immediately(self, rep):
        with tempfile.TemporaryDirectory() as tmp:
            wal = WriteAheadLog(tmp, fsync="never")
            store = CheckpointStore(Path(tmp) / "ck")
            engine = _engine(rep, wal=wal)
            engine.ingest("s", 0, [["+", 0, 1]])
            compactor = WalCompactor(engine, wal, store, interval=30.0)
            assert compactor.compact_now() is True
            wal.close()


# ----------------------------------------------------------------------
# Degraded pagerank snapshot (satellite 3)
# ----------------------------------------------------------------------
class TestDegradedPagerankSnapshot:
    def test_degraded_estimate_is_flagged_and_finite(self, rep):
        engine = _engine(rep, degraded=True)
        sink: list = []
        score = engine.pagerank_score(0, deadline=0.0, degraded_sink=sink)
        assert sink == ["pagerank"]
        assert 0.0 < score < 1.0


# ----------------------------------------------------------------------
# Properties: interleaving + crash cuts (satellite 5)
# ----------------------------------------------------------------------
@st.composite
def interleaved_scenarios(draw):
    n = draw(st.integers(min_value=4, max_value=12))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    count = draw(st.integers(0, min(len(possible), 20)))
    indices = draw(
        st.lists(
            st.integers(0, len(possible) - 1),
            min_size=count, max_size=count, unique=True,
        )
    )
    tokens = draw(st.lists(st.integers(0, 10**6), min_size=1, max_size=25))
    return n, [possible[i] for i in indices], tokens


def _script_from_tokens(n, initial_edges, tokens):
    edges = set(initial_edges)
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    script = []
    for token in tokens:
        free = sorted(set(possible) - edges)
        present = sorted(edges)
        if token % 2 == 0 and free:
            edge = free[(token // 2) % len(free)]
            edges.add(edge)
            script.append(("+", *edge))
        elif present:
            edge = present[(token // 2) % len(present)]
            edges.discard(edge)
            script.append(("-", *edge))
        elif free:
            edge = free[(token // 2) % len(free)]
            edges.add(edge)
            script.append(("+", *edge))
    return script, edges


def _small_rep(n, edges):
    return MagsDMSummarizer(iterations=5, seed=0).summarize(
        Graph(n, sorted(edges))
    ).representation


@given(scenario=interleaved_scenarios())
@settings(**_SETTINGS)
def test_interleaved_maintenance_preserves_edge_set_at_every_epoch(
    scenario,
):
    n, initial_edges, tokens = scenario
    script, _ = _script_from_tokens(n, initial_edges, tokens)
    rep = _small_rep(n, initial_edges)
    engine = MutableQueryEngine(
        DynamicGraphSummary.from_representation(
            rep,
            summarizer_factory=lambda: MagsDMSummarizer(
                iterations=5, seed=0
            ),
        )
    )
    oracle = set(initial_edges)
    for i, mutation in enumerate(script):
        engine.ingest("hypo", i, [list(mutation)])
        sign, u, v = mutation
        (oracle.add if sign == "+" else oracle.discard)((u, v))
        if i % 3 == 2:
            engine.maintenance_pass(
                max_supernodes=4 + i % 5, max_merges=8 + i % 7
            )
        got = set(
            engine._dynamic.to_representation().reconstruct_edges()
        )
        assert got == oracle, f"diverged after mutation {i}"
    # Converge fully, then the summary is the optimal encoding of its
    # own partition.
    from repro.core.verify import deep_audit

    while engine.maintenance_pass(max_supernodes=1024)["outcome"] == (
        "committed"
    ):
        pass
    assert deep_audit(engine.representation, optimal=True) == []


@given(
    scenario=interleaved_scenarios(),
    cut_fraction=st.floats(0.0, 1.0),
)
@settings(**_SETTINGS)
def test_recovery_at_random_cut_covers_resummarize_records(
    scenario, cut_fraction
):
    n, initial_edges, tokens = scenario
    script, _ = _script_from_tokens(n, initial_edges, tokens)
    rep = _small_rep(n, initial_edges)

    def factory():
        return MagsDMSummarizer(iterations=5, seed=0)

    with tempfile.TemporaryDirectory() as raw_dir:
        wal_dir = Path(raw_dir)
        wal = WriteAheadLog(wal_dir, fsync="never")
        engine = MutableQueryEngine(
            DynamicGraphSummary.from_representation(
                rep, summarizer_factory=factory
            ),
            wal=wal,
        )
        for i, mutation in enumerate(script):
            engine.ingest("hypo", i, [list(mutation)])
            if i % 4 == 3:
                engine.maintenance_pass(max_supernodes=6)
        wal.close()

        segment = next(iter(sorted(wal_dir.glob("wal-*.log"))), None)
        if segment is not None:
            data = segment.read_bytes()
            segment.write_bytes(data[: int(len(data) * cut_fraction)])

        wal2 = WriteAheadLog(wal_dir, fsync="never")
        recovered, pending, report = recover_engine(
            rep, wal2, None,
            engine_factory=lambda d: MutableQueryEngine(d, wal=wal2),
        )
        recovered._dynamic._make_summarizer = factory
        surviving = list(pending)
        replay_tail(recovered, surviving, report)
        wal2.close()

    # Oracle: an uninterrupted engine fed exactly the surviving
    # records through the same replay path.
    oracle = MutableQueryEngine(
        DynamicGraphSummary.from_representation(
            rep, summarizer_factory=factory
        )
    )
    for record in surviving:
        oracle.replay_record(record)
    assert recovered.representation == oracle.representation
    assert recovered.epoch == oracle.epoch
    assert (
        recovered._dynamic.dirty_supernodes()
        == oracle._dynamic.dirty_supernodes()
    )
