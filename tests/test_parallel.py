"""Tests for the parallel execution paths and the speedup model."""

import random

import pytest

from repro.algorithms.parallel import (
    lpt_partition,
    map_chunks,
    merge_groups_parallel,
    partition_speedup,
)


class TestMapChunks:
    def test_covers_all_items(self):
        seen = []
        map_chunks(list(range(10)), 3, lambda chunk, off: seen.extend(chunk))
        assert sorted(seen) == list(range(10))

    def test_offsets_are_chunk_starts(self):
        offsets = []
        map_chunks(list(range(10)), 3, lambda chunk, off: offsets.append(off))
        assert offsets == [0, 4, 8]

    def test_single_worker_is_serial(self):
        results = map_chunks([1, 2, 3], 1, lambda chunk, off: sum(chunk))
        assert results == [6]

    def test_empty_items(self):
        assert map_chunks([], 4, lambda c, o: c) == []

    def test_more_workers_than_items(self):
        results = map_chunks([5], 8, lambda chunk, off: chunk[0])
        assert results == [5]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            map_chunks([1], 0, lambda c, o: c)

    def test_results_in_chunk_order(self):
        results = map_chunks(
            list(range(9)), 3, lambda chunk, off: (off, list(chunk))
        )
        assert [r[0] for r in results] == [0, 3, 6]


class TestLptPartition:
    def test_makespan_within_lpt_bound(self):
        works = [5, 4, 3, 3, 3]
        assignment = lpt_partition(works, 2)
        loads = [sum(works[i] for i in bucket) for bucket in assignment]
        # Optimal makespan is 9 ({5,4} vs {3,3,3}); LPT guarantees
        # at most 4/3 of it.
        assert 9 <= max(loads) <= 12

    def test_every_item_assigned_once(self):
        assignment = lpt_partition([1.0] * 7, 3)
        flat = sorted(i for bucket in assignment for i in bucket)
        assert flat == list(range(7))

    def test_single_worker(self):
        assignment = lpt_partition([2, 1], 1)
        assert sorted(assignment[0]) == [0, 1]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            lpt_partition([1], 0)

    def test_empty_work(self):
        assert lpt_partition([], 3) == [[], [], []]


class TestPartitionSpeedup:
    def test_single_worker_is_one(self):
        assert partition_speedup([3, 2, 1], 1) == 1.0

    def test_perfectly_parallel_work(self):
        speedup = partition_speedup([1.0] * 100, 10)
        assert speedup == pytest.approx(10.0, rel=0.01)

    def test_one_giant_item_limits_speedup(self):
        # One item holds 50% of the work: speedup can't pass 2.
        speedup = partition_speedup([50.0] + [1.0] * 50, 100)
        assert speedup < 2.01

    def test_sync_overhead_reduces_speedup(self):
        free = partition_speedup([1.0] * 100, 10)
        taxed = partition_speedup([1.0] * 100, 10, sync_overhead=10.0)
        assert taxed < free

    def test_serial_fraction_caps_speedup(self):
        # Amdahl: 20% serial caps speedup below 5 regardless of p.
        speedup = partition_speedup(
            [1.0] * 1000, 1000, serial_fraction=0.2
        )
        assert speedup < 5.1

    def test_zero_work(self):
        assert partition_speedup([], 4) == 1.0

    def test_monotone_in_workers(self):
        works = [float(w) for w in range(1, 40)]
        speedups = [partition_speedup(works, p) for p in (1, 2, 4, 8)]
        assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))


class TestMergeGroupsParallel:
    def test_matches_group_semantics(self, community_graph):
        """Parallel group merging must produce a valid (lossless)
        result and perform a comparable number of merges."""
        from repro.algorithms.mags_dm import MagsDMSummarizer
        from repro.core.minhash import MinHashSignatures
        from repro.core.supernodes import SuperNodePartition

        dm = MagsDMSummarizer(iterations=1, seed=0)
        partition = SuperNodePartition(community_graph)
        signatures = MinHashSignatures(community_graph, dm.h, seed=0)
        groups = [
            list(range(i, i + 10)) for i in range(0, 60, 10)
        ]
        merges = merge_groups_parallel(
            dm, partition, signatures, groups, 0.1, random.Random(0), 4
        )
        partition.check_invariants()
        assert merges == partition.num_merges
