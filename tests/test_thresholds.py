"""Tests for the merge-threshold schedules (Equation 6 and theta)."""

import pytest

from repro.core.thresholds import omega, omega_schedule, theta, theta_schedule


class TestOmega:
    def test_endpoints(self):
        assert omega(1, 50) == pytest.approx(0.5)
        assert omega(50, 50) == pytest.approx(0.005)

    def test_paper_sequence_for_t50(self):
        # The paper quotes 0.5, 0.455, 0.414, ..., 0.005 (r ~ 0.912).
        assert omega(2, 50) == pytest.approx(0.455, abs=0.002)
        assert omega(3, 50) == pytest.approx(0.414, abs=0.002)

    def test_geometric_ratio(self):
        ratio = omega(2, 50) / omega(1, 50)
        assert ratio == pytest.approx(0.01 ** (1 / 49))

    def test_strictly_decreasing(self):
        schedule = omega_schedule(50)
        assert all(a > b for a, b in zip(schedule, schedule[1:]))

    def test_single_iteration_goes_straight_to_floor(self):
        assert omega(1, 1) == pytest.approx(0.005)

    def test_out_of_range_t(self):
        with pytest.raises(ValueError):
            omega(0, 10)
        with pytest.raises(ValueError):
            omega(11, 10)
        with pytest.raises(ValueError):
            omega(1, 0)

    def test_schedule_length(self):
        assert len(omega_schedule(20)) == 20

    def test_paper_example_window(self):
        """Section 4.1's example: with s(u,v)=0.46 the pair is mergeable
        for 2 <= t <= 5 only (omega(2)=0.455, omega(6)=0.313)."""
        assert omega(2, 50) < 0.46
        assert omega(5, 50) < 0.46
        # and the example pair (u,w) with saving 0.34 is not mergeable
        # before t=6 (omega(6) ~ 0.313 < 0.34 < omega(5)).
        assert omega(6, 50) < 0.34 < omega(5, 50)


class TestTheta:
    def test_values(self):
        assert theta(1) == pytest.approx(0.5)
        assert theta(2) == pytest.approx(1 / 3)
        assert theta(49) == pytest.approx(0.02)

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            theta(0)

    def test_schedule(self):
        schedule = theta_schedule(5)
        assert schedule == pytest.approx([1 / 2, 1 / 3, 1 / 4, 1 / 5, 1 / 6])


class TestComparison:
    def test_omega_decreases_more_slowly_early(self):
        """The design argument of Merging Strategy 3: omega stays above
        theta in the early-middle iterations, deferring low-quality
        merges."""
        T = 50
        assert omega(1, T) == pytest.approx(theta(1))
        for t in range(2, 20):
            assert omega(t, T) > theta(t)

    def test_omega_ends_below_theta(self):
        # ... but its floor (0.005) digs deeper than theta(50) ~ 0.0196.
        assert omega(50, 50) < theta(50)
