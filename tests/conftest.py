"""Shared fixtures: small graphs with known structure."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    """K3."""
    return Graph(3, [(0, 1), (0, 2), (1, 2)])


@pytest.fixture
def paper_like_graph() -> Graph:
    """A graph shaped like the paper's Figure 1 example.

    Nodes 0..7 play a..h.  Groups {0,1}, {3,4}, {5,6,7} have
    near-identical neighborhoods, so a good summary uses three
    super-edges plus corrections -(4,5) and +(2,6).
    """
    edges = [
        (0, 2), (1, 2),                    # {a,b} - c
        (0, 3), (0, 4), (1, 3), (1, 4),    # {a,b} x {d,e}
        (3, 5), (3, 6), (3, 7), (4, 6), (4, 7),  # {d,e} x {f,g,h} \ (e,f)
        (2, 6),                            # c - g
    ]
    return Graph(8, edges)


@pytest.fixture
def twin_graph() -> Graph:
    """Four pairs of twins (identical neighborhoods) around a 4-cycle.

    Nodes 2i and 2i+1 are twins attached to hub nodes 8..11; every
    reasonable summarizer collapses each twin pair.
    """
    edges = []
    for i in range(4):
        hub = 8 + i
        nxt = 8 + (i + 1) % 4
        edges.append((hub, nxt))
        edges.extend([(2 * i, hub), (2 * i + 1, hub)])
        edges.extend([(2 * i, nxt), (2 * i + 1, nxt)])
    return Graph(12, edges)


@pytest.fixture
def clique_graph() -> Graph:
    """K6 — collapses to a single super-node with a self-edge."""
    return Graph(6, [(i, j) for i in range(6) for j in range(i + 1, 6)])


@pytest.fixture
def star_graph() -> Graph:
    """Star with 9 leaves — leaves are mutually mergeable."""
    return Graph(10, [(0, leaf) for leaf in range(1, 10)])


@pytest.fixture
def path_graph() -> Graph:
    """P6 — sparse and nearly incompressible."""
    return Graph(6, [(i, i + 1) for i in range(5)])


@pytest.fixture
def disconnected_graph() -> Graph:
    """Two triangles plus two isolated nodes."""
    return Graph(
        8, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]
    )


@pytest.fixture
def community_graph() -> Graph:
    """A 150-node planted-partition graph (deterministic)."""
    return generators.planted_partition(150, 10, 0.7, 0.02, seed=42)


@pytest.fixture
def scale_free_graph() -> Graph:
    """A 120-node Barabási–Albert graph (deterministic)."""
    return generators.barabasi_albert(120, 3, seed=42)


def all_test_graphs() -> list[tuple[str, Graph]]:
    """Named graphs for exhaustive algorithm tests (module-level so
    parametrised tests can use it without fixtures)."""
    return [
        ("triangle", Graph(3, [(0, 1), (0, 2), (1, 2)])),
        ("path", Graph(6, [(i, i + 1) for i in range(5)])),
        ("star", Graph(10, [(0, leaf) for leaf in range(1, 10)])),
        (
            "clique",
            Graph(6, [(i, j) for i in range(6) for j in range(i + 1, 6)]),
        ),
        ("empty", Graph(5, [])),
        ("single_edge", Graph(2, [(0, 1)])),
        (
            "two_triangles",
            Graph(8, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]),
        ),
        ("community", generators.planted_partition(80, 5, 0.8, 0.05, seed=1)),
        ("scale_free", generators.barabasi_albert(80, 3, seed=1)),
        ("caveman", generators.caveman(5, 6, seed=1)),
        ("web", generators.templated_web(120, 8, 20, 5, 0.1, seed=1)),
    ]
