"""Docstring examples must actually run.

The package docstring and several module docstrings carry runnable
examples; this keeps them honest.
"""

import doctest

import pytest

import repro
import repro.core.costs
import repro.core.supernodes
import repro.graph.graph
import repro.graph.io

_MODULES = [
    repro.graph.graph,
    repro.graph.io,
    repro.core.costs,
    repro.core.supernodes,
]


@pytest.mark.parametrize(
    "module", _MODULES, ids=[m.__name__ for m in _MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_package_quickstart_docstring():
    """The quickstart in the package docstring is executable as-is."""
    from repro import MagsSummarizer, generators

    graph = generators.planted_partition(500, 25, 0.6, 0.01, seed=7)
    result = MagsSummarizer(iterations=30).summarize(graph)
    assert 0 < result.relative_size < 1
    rep = result.representation
    assert rep.reconstruct_edges() == graph.edge_set()
