"""Tests for the dataset registry (Table 2 analogs)."""

import pytest

from repro.graph.datasets import (
    DATASETS,
    LARGE_DATASETS,
    MEDIUM_DATASETS,
    SMALL_DATASETS,
    dataset_codes,
    load_dataset,
)


class TestRegistry:
    def test_eighteen_datasets(self):
        assert len(dataset_codes()) == 18

    def test_small_large_partition(self):
        assert set(SMALL_DATASETS) | set(LARGE_DATASETS) == set(dataset_codes())
        assert not set(SMALL_DATASETS) & set(LARGE_DATASETS)

    def test_small_set_matches_paper(self):
        assert SMALL_DATASETS == ["CA", "EN", "BK", "EA", "SL", "DB"]

    def test_medium_subset_is_large(self):
        assert set(MEDIUM_DATASETS) <= set(LARGE_DATASETS)

    def test_paper_statistics_recorded(self):
        ca = DATASETS["CA"]
        assert ca.paper_n == 26_475
        assert ca.paper_m == 53_381
        assert ca.paper_davg == pytest.approx(4.0)

    def test_unknown_code_raises_with_hint(self):
        with pytest.raises(KeyError, match="known codes"):
            load_dataset("nope")

    def test_code_lookup_is_case_insensitive(self):
        assert load_dataset("ca") == load_dataset("CA")


class TestAnalogs:
    @pytest.mark.parametrize("code", SMALL_DATASETS)
    def test_small_analogs_load(self, code):
        g = load_dataset(code)
        assert 0 < g.n < 1_000
        assert g.m > 0

    def test_loading_twice_is_deterministic(self):
        assert load_dataset("EN") == load_dataset("EN")

    @pytest.mark.parametrize("code", ["CA", "EN", "BK", "SL"])
    def test_avg_degree_tracks_paper(self, code):
        spec = DATASETS[code]
        g = load_dataset(code)
        # Within a factor ~2 of the paper's average degree.
        assert spec.paper_davg / 2.2 < g.avg_degree < spec.paper_davg * 2.2

    def test_large_analogs_are_larger(self):
        small = load_dataset("CA")
        large = load_dataset("IT")
        assert large.n > 5 * small.n

    def test_web_analogs_are_highly_compressible(self):
        # The defining property of the paper's web crawls: huge groups
        # of nodes with identical neighborhoods.
        g = load_dataset("CN")
        groups: dict[frozenset, int] = {}
        for u in g.nodes():
            key = frozenset(g.neighbors(u))
            groups[key] = groups.get(key, 0) + 1
        assert max(groups.values()) > 20
