"""Router-level ingest: endpoint-owner fan-out over a mutable cluster."""

from __future__ import annotations

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.cluster.manager import start_local_cluster
from repro.cluster.sharder import shard_graph
from repro.cluster.topology import TopologyError
from repro.graph import generators
from repro.service import ServiceError, SummaryServiceClient


@pytest.fixture(scope="module")
def graph():
    return generators.planted_partition(120, 6, 0.6, 0.05, seed=3)


@pytest.fixture(scope="module")
def shard_reps(graph):
    summarizer = MagsDMSummarizer(iterations=8, seed=1)
    return [
        summarizer.summarize(subgraph).representation
        for subgraph in shard_graph(graph, 2, seed=0)
    ]


@pytest.fixture
def cluster(graph, shard_reps):
    with start_local_cluster(
        shard_reps, replicas=1, seed=0, n=graph.n, mutable=True
    ) as local:
        yield local


def _free_cross_shard_edge(cluster, graph):
    """A non-edge whose endpoints live on different shards."""
    spec = cluster.spec
    edges = set(graph.edges())
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            if (u, v) in edges:
                continue
            if spec.owner(u) != spec.owner(v):
                return u, v
    raise AssertionError("no cross-shard free pair")


class TestRouterIngest:
    def test_cross_shard_insert_lands_on_both_owners(
        self, cluster, graph
    ):
        u, v = _free_cross_shard_edge(cluster, graph)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            result = client.ingest([["+", u, v]])
            assert result["applied"] == 1
            # Both endpoint shards applied their sub-batch.
            assert set(result["shards"]) == {
                str(cluster.spec.owner(u)), str(cluster.spec.owner(v))
            }
            # Both directions answer through the router (each endpoint
            # is served by a different shard) - the 1-hop-closure
            # invariant held.
            assert v in client.neighbors(u)
            assert u in client.neighbors(v)
            client.ingest([["-", u, v]])
            assert v not in client.neighbors(u)
            assert u not in client.neighbors(v)

    def test_router_cache_invalidated_per_dirty_node(
        self, cluster, graph
    ):
        u, v = _free_cross_shard_edge(cluster, graph)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            before = set(client.neighbors(u))  # warms the router cache
            client.ingest([["+", u, v]])
            assert set(client.neighbors(u)) == before | {v}

    def test_duplicate_batch_converges_per_shard(self, cluster, graph):
        u, v = _free_cross_shard_edge(cluster, graph)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            client.ingest([["+", u, v]], stream="dup", seq=0)
            retry = client.ingest([["+", u, v]], stream="dup", seq=0)
            assert all(
                shard.get("duplicate") is True
                for shard in retry["shards"].values()
            )

    def test_malformed_ingest_rejected_before_fanout(self, cluster):
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="out of range"):
                client.ingest([["+", 0, 10**9]])
            with pytest.raises(ServiceError) as excinfo:
                client.request("ingest", stream="s", seq=0,
                               mutations=[["+", 0, 0]])
            assert excinfo.value.type == "bad_request"


class TestReplicasGuard:
    def test_mutable_local_cluster_requires_single_replica(
        self, graph, shard_reps
    ):
        with pytest.raises(TopologyError, match="replicas=1"):
            start_local_cluster(
                shard_reps, replicas=2, seed=0, n=graph.n, mutable=True
            )

    def test_router_rejects_ingest_on_replicated_topology(
        self, graph, shard_reps
    ):
        with start_local_cluster(
            shard_reps, replicas=2, seed=0, n=graph.n
        ) as local:
            host, port = local.router_address
            with SummaryServiceClient(host, port) as client:
                with pytest.raises(
                    ServiceError, match="replicas=1 topology"
                ):
                    client.ingest([["+", 0, 1]])
