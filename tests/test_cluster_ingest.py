"""Router-level ingest: endpoint-owner fan-out over a mutable cluster."""

from __future__ import annotations

import time

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.cluster.manager import start_local_cluster
from repro.cluster.sharder import shard_graph
from repro.graph import generators
from repro.resilience.retry import RetryPolicy
from repro.service import ServiceError, SummaryServiceClient


def _wait_for_edge(engine, u, v, timeout=5.0) -> bool:
    """Poll an engine until the background shipper has replicated
    edge ``(u, v)`` to it."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if v in engine.neighbors(u):
            return True
        time.sleep(0.05)
    return False


@pytest.fixture(scope="module")
def graph():
    return generators.planted_partition(120, 6, 0.6, 0.05, seed=3)


@pytest.fixture(scope="module")
def shard_reps(graph):
    summarizer = MagsDMSummarizer(iterations=8, seed=1)
    return [
        summarizer.summarize(subgraph).representation
        for subgraph in shard_graph(graph, 2, seed=0)
    ]


@pytest.fixture
def cluster(graph, shard_reps):
    with start_local_cluster(
        shard_reps, replicas=1, seed=0, n=graph.n, mutable=True
    ) as local:
        yield local


def _free_cross_shard_edge(cluster, graph):
    """A non-edge whose endpoints live on different shards."""
    spec = cluster.spec
    edges = set(graph.edges())
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            if (u, v) in edges:
                continue
            if spec.owner(u) != spec.owner(v):
                return u, v
    raise AssertionError("no cross-shard free pair")


def _existing_edge_on_shard(cluster, graph, shard):
    """An edge of the base graph wholly owned by ``shard``."""
    spec = cluster.spec
    for u, v in graph.edges():
        if spec.owner(u) == shard and spec.owner(v) == shard:
            return u, v
    raise AssertionError(f"no intra-shard edge on shard {shard}")


def _free_pair_on_shard(cluster, graph, shard):
    """A non-edge whose endpoints are both owned by ``shard``."""
    spec = cluster.spec
    edges = set(graph.edges())
    nodes = [n for n in range(graph.n) if spec.owner(n) == shard]
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            pair = (u, v) if u < v else (v, u)
            if pair not in edges:
                return pair
    raise AssertionError(f"no intra-shard free pair on shard {shard}")


class TestRouterIngest:
    def test_cross_shard_insert_lands_on_both_owners(
        self, cluster, graph
    ):
        u, v = _free_cross_shard_edge(cluster, graph)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            result = client.ingest([["+", u, v]])
            assert result["applied"] == 1
            # Both endpoint shards applied their sub-batch.
            assert set(result["shards"]) == {
                str(cluster.spec.owner(u)), str(cluster.spec.owner(v))
            }
            # Both directions answer through the router (each endpoint
            # is served by a different shard) - the 1-hop-closure
            # invariant held.
            assert v in client.neighbors(u)
            assert u in client.neighbors(v)
            client.ingest([["-", u, v]])
            assert v not in client.neighbors(u)
            assert u not in client.neighbors(v)

    def test_router_cache_invalidated_per_dirty_node(
        self, cluster, graph
    ):
        u, v = _free_cross_shard_edge(cluster, graph)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            before = set(client.neighbors(u))  # warms the router cache
            client.ingest([["+", u, v]])
            assert set(client.neighbors(u)) == before | {v}

    def test_duplicate_batch_converges_per_shard(self, cluster, graph):
        u, v = _free_cross_shard_edge(cluster, graph)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            client.ingest([["+", u, v]], stream="dup", seq=0)
            retry = client.ingest([["+", u, v]], stream="dup", seq=0)
            assert all(
                shard.get("duplicate") is True
                for shard in retry["shards"].values()
            )

    def test_batch_invalid_on_one_shard_applies_nowhere(
        self, cluster, graph
    ):
        """Cross-shard atomicity: the prepare round rejects a batch
        that any shard finds inapplicable *before* anything commits,
        so the shard whose sub-batch was valid must not have applied
        it either."""
        # An already-present edge wholly on shard 0 poisons that
        # shard's sub-batch; a free pair wholly on shard 1 would have
        # applied cleanly there.
        a, b = _existing_edge_on_shard(cluster, graph, 0)
        w, x = _free_pair_on_shard(cluster, graph, 1)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="already exists"):
                client.ingest([["+", w, x], ["+", a, b]])
            assert x not in client.neighbors(w)
            # Shard 1 never applied (w, x) during the rejected batch:
            # inserting it now at a fresh seq succeeds rather than
            # failing with "already exists".
            assert client.ingest([["+", w, x]])["applied"] == 1
            assert x in client.neighbors(w)
            client.ingest([["-", w, x]])

    def test_client_dry_run_validates_without_committing(
        self, cluster, graph
    ):
        """A client-sent ``dry_run`` through the router stops after
        the prepare round: every shard validates, nothing commits."""
        u, v = _free_cross_shard_edge(cluster, graph)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            result = client.request(
                "ingest", stream="dr", seq=0,
                mutations=[["+", u, v]], dry_run=True,
            )
            assert result == {"validated": 1}
            assert v not in client.neighbors(u)
            # An inapplicable dry run is rejected the same way a real
            # ingest would be.
            a, b = _existing_edge_on_shard(cluster, graph, 0)
            with pytest.raises(ServiceError, match="already exists"):
                client.request(
                    "ingest", stream="dr", seq=0,
                    mutations=[["+", a, b]], dry_run=True,
                )

    def test_malformed_ingest_rejected_before_fanout(self, cluster):
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="out of range"):
                client.ingest([["+", 0, 10**9]])
            with pytest.raises(ServiceError) as excinfo:
                client.request("ingest", stream="s", seq=0,
                               mutations=[["+", 0, 0]])
            assert excinfo.value.type == "bad_request"


class TestReplicatedIngest:
    """Primary-routed writes over a replicas=2 mutable cluster."""

    @pytest.fixture
    def replicated(self, graph, shard_reps):
        with start_local_cluster(
            shard_reps,
            replicas=2,
            seed=0,
            n=graph.n,
            mutable=True,
            acks="leader",
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.02, max_delay=0.1
            ),
        ) as local:
            yield local

    def test_replicated_ingest_reaches_followers(
        self, replicated, graph
    ):
        u, v = _free_cross_shard_edge(replicated, graph)
        host, port = replicated.router_address
        with SummaryServiceClient(host, port) as client:
            assert client.ingest([["+", u, v]])["applied"] == 1
            # Both endpoint shards' *followers* converge to the write
            # (the primary ships it; leader acks mean we may need to
            # wait out the background shipper).
            for shard in {
                replicated.spec.owner(u), replicated.spec.owner(v)
            }:
                follower = replicated.engines[f"shard{shard}/r1"]
                assert _wait_for_edge(follower, u, v), (
                    f"shard {shard} follower never saw ({u}, {v})"
                )
            client.ingest([["-", u, v]])

    def test_read_only_replicated_cluster_still_rejects_ingest(
        self, graph, shard_reps
    ):
        with start_local_cluster(
            shard_reps, replicas=2, seed=0, n=graph.n
        ) as local:
            host, port = local.router_address
            with SummaryServiceClient(host, port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.ingest([["+", 0, 1]])
                assert excinfo.value.type == "bad_request"

    def test_ingest_with_all_replicas_down_is_unavailable(
        self, replicated, graph
    ):
        u, v = _free_pair_on_shard(replicated, graph, 0)
        replicated.kill_instance("shard0/r0")
        replicated.kill_instance("shard0/r1")
        host, port = replicated.router_address
        with SummaryServiceClient(host, port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.ingest([["+", u, v]])
            assert excinfo.value.type == "unavailable"

    def test_retry_across_promotion_dedups(self, replicated, graph):
        """A batch acked just before the primary dies is answered
        ``duplicate: true`` by the promoted follower when the client
        replays the same ``(stream, seq)``."""
        u, v = _free_pair_on_shard(replicated, graph, 0)
        shard = replicated.spec.owner(u)
        host, port = replicated.router_address
        with SummaryServiceClient(host, port) as client:
            first = client.ingest(
                [["+", u, v]], stream="failover", seq=7
            )
            assert first["applied"] == 1
            # The primary replicated the batch before dying: wait for
            # the follower to hold it, then kill the primary.
            follower = replicated.engines[f"shard{shard}/r1"]
            assert _wait_for_edge(follower, u, v)
            replicated.kill_instance(f"shard{shard}/r0")
            retry = client.ingest(
                [["+", u, v]], stream="failover", seq=7
            )
            assert retry["shards"][str(shard)].get("duplicate") is True
            # The router re-elected without operator action.
            pool = replicated.router_engine._shards[shard]
            assert pool.replicas[pool.primary].instance.replica == 1
            assert follower.role == "primary"
            assert pool.term == follower.term >= 2
