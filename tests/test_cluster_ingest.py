"""Router-level ingest: endpoint-owner fan-out over a mutable cluster."""

from __future__ import annotations

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.cluster.manager import start_local_cluster
from repro.cluster.sharder import shard_graph
from repro.cluster.topology import TopologyError
from repro.graph import generators
from repro.service import ServiceError, SummaryServiceClient


@pytest.fixture(scope="module")
def graph():
    return generators.planted_partition(120, 6, 0.6, 0.05, seed=3)


@pytest.fixture(scope="module")
def shard_reps(graph):
    summarizer = MagsDMSummarizer(iterations=8, seed=1)
    return [
        summarizer.summarize(subgraph).representation
        for subgraph in shard_graph(graph, 2, seed=0)
    ]


@pytest.fixture
def cluster(graph, shard_reps):
    with start_local_cluster(
        shard_reps, replicas=1, seed=0, n=graph.n, mutable=True
    ) as local:
        yield local


def _free_cross_shard_edge(cluster, graph):
    """A non-edge whose endpoints live on different shards."""
    spec = cluster.spec
    edges = set(graph.edges())
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            if (u, v) in edges:
                continue
            if spec.owner(u) != spec.owner(v):
                return u, v
    raise AssertionError("no cross-shard free pair")


def _existing_edge_on_shard(cluster, graph, shard):
    """An edge of the base graph wholly owned by ``shard``."""
    spec = cluster.spec
    for u, v in graph.edges():
        if spec.owner(u) == shard and spec.owner(v) == shard:
            return u, v
    raise AssertionError(f"no intra-shard edge on shard {shard}")


def _free_pair_on_shard(cluster, graph, shard):
    """A non-edge whose endpoints are both owned by ``shard``."""
    spec = cluster.spec
    edges = set(graph.edges())
    nodes = [n for n in range(graph.n) if spec.owner(n) == shard]
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            pair = (u, v) if u < v else (v, u)
            if pair not in edges:
                return pair
    raise AssertionError(f"no intra-shard free pair on shard {shard}")


class TestRouterIngest:
    def test_cross_shard_insert_lands_on_both_owners(
        self, cluster, graph
    ):
        u, v = _free_cross_shard_edge(cluster, graph)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            result = client.ingest([["+", u, v]])
            assert result["applied"] == 1
            # Both endpoint shards applied their sub-batch.
            assert set(result["shards"]) == {
                str(cluster.spec.owner(u)), str(cluster.spec.owner(v))
            }
            # Both directions answer through the router (each endpoint
            # is served by a different shard) - the 1-hop-closure
            # invariant held.
            assert v in client.neighbors(u)
            assert u in client.neighbors(v)
            client.ingest([["-", u, v]])
            assert v not in client.neighbors(u)
            assert u not in client.neighbors(v)

    def test_router_cache_invalidated_per_dirty_node(
        self, cluster, graph
    ):
        u, v = _free_cross_shard_edge(cluster, graph)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            before = set(client.neighbors(u))  # warms the router cache
            client.ingest([["+", u, v]])
            assert set(client.neighbors(u)) == before | {v}

    def test_duplicate_batch_converges_per_shard(self, cluster, graph):
        u, v = _free_cross_shard_edge(cluster, graph)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            client.ingest([["+", u, v]], stream="dup", seq=0)
            retry = client.ingest([["+", u, v]], stream="dup", seq=0)
            assert all(
                shard.get("duplicate") is True
                for shard in retry["shards"].values()
            )

    def test_batch_invalid_on_one_shard_applies_nowhere(
        self, cluster, graph
    ):
        """Cross-shard atomicity: the prepare round rejects a batch
        that any shard finds inapplicable *before* anything commits,
        so the shard whose sub-batch was valid must not have applied
        it either."""
        # An already-present edge wholly on shard 0 poisons that
        # shard's sub-batch; a free pair wholly on shard 1 would have
        # applied cleanly there.
        a, b = _existing_edge_on_shard(cluster, graph, 0)
        w, x = _free_pair_on_shard(cluster, graph, 1)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="already exists"):
                client.ingest([["+", w, x], ["+", a, b]])
            assert x not in client.neighbors(w)
            # Shard 1 never applied (w, x) during the rejected batch:
            # inserting it now at a fresh seq succeeds rather than
            # failing with "already exists".
            assert client.ingest([["+", w, x]])["applied"] == 1
            assert x in client.neighbors(w)
            client.ingest([["-", w, x]])

    def test_client_dry_run_validates_without_committing(
        self, cluster, graph
    ):
        """A client-sent ``dry_run`` through the router stops after
        the prepare round: every shard validates, nothing commits."""
        u, v = _free_cross_shard_edge(cluster, graph)
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            result = client.request(
                "ingest", stream="dr", seq=0,
                mutations=[["+", u, v]], dry_run=True,
            )
            assert result == {"validated": 1}
            assert v not in client.neighbors(u)
            # An inapplicable dry run is rejected the same way a real
            # ingest would be.
            a, b = _existing_edge_on_shard(cluster, graph, 0)
            with pytest.raises(ServiceError, match="already exists"):
                client.request(
                    "ingest", stream="dr", seq=0,
                    mutations=[["+", a, b]], dry_run=True,
                )

    def test_malformed_ingest_rejected_before_fanout(self, cluster):
        host, port = cluster.router_address
        with SummaryServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="out of range"):
                client.ingest([["+", 0, 10**9]])
            with pytest.raises(ServiceError) as excinfo:
                client.request("ingest", stream="s", seq=0,
                               mutations=[["+", 0, 0]])
            assert excinfo.value.type == "bad_request"


class TestReplicasGuard:
    def test_mutable_local_cluster_requires_single_replica(
        self, graph, shard_reps
    ):
        with pytest.raises(TopologyError, match="replicas=1"):
            start_local_cluster(
                shard_reps, replicas=2, seed=0, n=graph.n, mutable=True
            )

    def test_router_rejects_ingest_on_replicated_topology(
        self, graph, shard_reps
    ):
        with start_local_cluster(
            shard_reps, replicas=2, seed=0, n=graph.n
        ) as local:
            host, port = local.router_address
            with SummaryServiceClient(host, port) as client:
                with pytest.raises(
                    ServiceError, match="replicas=1 topology"
                ):
                    client.ingest([["+", 0, 1]])
