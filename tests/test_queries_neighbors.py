"""Tests for neighbor queries on the summary (Algorithm 6)."""

import pytest

from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.encoding import encode
from repro.core.supernodes import SuperNodePartition
from repro.queries.neighbors import SummaryNeighborIndex, neighbor_query


def _representation(graph, merges=()):
    partition = SuperNodePartition(graph)
    for u, v in merges:
        partition.merge(partition.find(u), partition.find(v))
    return encode(partition)


class TestNeighborQuery:
    def test_exact_on_singleton_encoding(self, paper_like_graph):
        rep = _representation(paper_like_graph)
        for q in paper_like_graph.nodes():
            assert neighbor_query(rep, q) == set(paper_like_graph.neighbors(q))

    def test_exact_after_merges(self, paper_like_graph):
        rep = _representation(
            paper_like_graph, [(0, 1), (3, 4), (5, 6), (5, 7)]
        )
        for q in paper_like_graph.nodes():
            assert neighbor_query(rep, q) == set(paper_like_graph.neighbors(q))

    def test_self_superedge_excludes_self(self, clique_graph):
        rep = _representation(
            clique_graph, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]
        )
        assert neighbor_query(rep, 0) == {1, 2, 3, 4, 5}

    def test_out_of_range(self, triangle):
        rep = _representation(triangle)
        with pytest.raises(IndexError):
            neighbor_query(rep, 99)


class TestSummaryNeighborIndex:
    @pytest.fixture
    def summarized(self, community_graph):
        result = MagsDMSummarizer(iterations=8, seed=1).summarize(
            community_graph
        )
        return community_graph, SummaryNeighborIndex(result.representation)

    def test_exact_for_every_node(self, summarized):
        graph, index = summarized
        for q in graph.nodes():
            assert index.neighbors(q) == set(graph.neighbors(q))

    def test_matches_one_shot_query(self, summarized):
        graph, index = summarized
        for q in range(0, graph.n, 17):
            assert index.neighbors(q) == neighbor_query(
                index.representation, q
            )

    def test_degree(self, summarized):
        graph, index = summarized
        assert all(
            index.degree(q) == graph.degree(q)
            for q in range(0, graph.n, 13)
        )

    def test_out_of_range(self, summarized):
        __, index = summarized
        with pytest.raises(IndexError):
            index.neighbors(-1)

    def test_work_units_bound(self, community_graph):
        """Section 6.6: expected work is a small multiple of d_avg."""
        result = MagsSummarizer(iterations=10, seed=2).summarize(
            community_graph
        )
        index = SummaryNeighborIndex(result.representation)
        avg_work = sum(
            index.work_units(q) for q in community_graph.nodes()
        ) / community_graph.n
        assert avg_work <= 1.6 * community_graph.avg_degree

    def test_work_counts_removals_twice(self, clique_graph):
        from repro.graph.graph import Graph

        g = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
        rep = _representation(g, [(0, 1), (0, 2), (0, 3)])
        index = SummaryNeighborIndex(rep)
        # Self super-edge expands 3 others; (2,3) is a removal.
        assert index.work_units(2) == 3 + 2
