"""Adversarial-input hardening tests for validated graph ingestion.

Exercises the malformed-input corpus in ``tests/fixtures/malformed/``
under all three ingestion policies (``strict`` / ``skip`` /
``quarantine``), plus the resource caps (``max_nodes`` /
``max_edges`` / ``max_line_bytes``) and the diagnostic contract:
every strict-mode rejection names the 1-based line number, the byte
offset, and a truncated snippet of the offending line.
"""

import gzip
import re
from pathlib import Path

import pytest

from repro.graph.graph import GraphError
from repro.graph.io import (
    DEFAULT_MAX_LINE_BYTES,
    INGEST_POLICIES,
    load_graph,
    load_graph_checked,
)

CORPUS = Path(__file__).parent / "fixtures" / "malformed"

#: fixture -> (reason counted in skip/quarantine, rejected line count).
PER_LINE_FIXTURES = {
    "nan_tokens.txt": ("non_integer", 2),
    "short_line.txt": ("malformed", 1),
    "long_line.txt": ("line_too_long", 1),
    "out_of_range.txt": ("id_out_of_range", 1),
}

#: Structurally broken files: fatal under *every* policy — a corrupt
#: header or stream is not a skippable line.
FATAL_FIXTURES = ["bad_header.txt", "negative_count.txt", "truncated.txt.gz"]


class TestCorpusStrict:
    @pytest.mark.parametrize("name", sorted(PER_LINE_FIXTURES))
    def test_per_line_fixtures_fail_strict(self, name):
        with pytest.raises((ValueError, GraphError)) as excinfo:
            load_graph(CORPUS / name, policy="strict")
        message = str(excinfo.value)
        assert name in message  # names the file
        assert re.search(r"\(line \d+, byte \d+\)", message)

    @pytest.mark.parametrize("name", FATAL_FIXTURES)
    @pytest.mark.parametrize("policy", INGEST_POLICIES)
    def test_fatal_fixtures_fail_every_policy(self, name, policy):
        with pytest.raises((ValueError, GraphError)):
            load_graph(CORPUS / name, policy=policy)

    def test_diagnostic_names_line_and_snippet(self):
        with pytest.raises(ValueError) as excinfo:
            load_graph(CORPUS / "nan_tokens.txt", policy="strict")
        message = str(excinfo.value)
        # line 2 ("nan inf") starts after "0 1\n" = byte 4.
        assert "(line 2, byte 4)" in message
        assert "'nan inf'" in message

    def test_long_snippet_is_truncated(self):
        with pytest.raises(ValueError) as excinfo:
            load_graph(CORPUS / "long_line.txt", policy="strict")
        message = str(excinfo.value)
        assert "..." in message
        assert len(message) < 300  # not the whole 70 KB line

    def test_clean_but_messy_file_loads_under_strict(self):
        # Self-loops and duplicates are *cleaning* concerns, not
        # validity concerns: no policy rejects them.
        graph, report = load_graph_checked(
            CORPUS / "selfloop_dup_flood.txt", policy="strict"
        )
        assert (graph.n, graph.m) == (3, 2)
        assert report.rejected == 0


class TestCorpusSkip:
    @pytest.mark.parametrize("name", sorted(PER_LINE_FIXTURES))
    def test_skip_drops_and_counts(self, name):
        reason, count = PER_LINE_FIXTURES[name]
        graph, report = load_graph_checked(CORPUS / name, policy="skip")
        assert report.rejected == count
        assert report.rejected_by_reason == {reason: count}
        # The surviving lines form the same clean 3-node path.
        assert (graph.n, graph.m) == (3, 2)
        assert report.quarantine_path is None

    def test_rejections_visible_in_metrics(self):
        from repro.obs.metrics import get_registry

        registry = get_registry()

        def total():
            return sum(
                metric.value
                for labels, metric in registry.family(
                    "repro_ingest_rejected_lines_total"
                )
            )

        before = total()
        load_graph_checked(CORPUS / "nan_tokens.txt", policy="skip")
        assert total() == before + 2


class TestCorpusQuarantine:
    @pytest.mark.parametrize("name", sorted(PER_LINE_FIXTURES))
    def test_quarantine_writes_sidecar(self, name, tmp_path):
        reason, count = PER_LINE_FIXTURES[name]
        sidecar = tmp_path / f"{name}.quarantine"
        graph, report = load_graph_checked(
            CORPUS / name, policy="quarantine", quarantine_path=sidecar
        )
        assert (graph.n, graph.m) == (3, 2)
        assert report.quarantine_path == sidecar
        rows = sidecar.read_text().splitlines()
        assert len(rows) == count
        line_no, offset, row_reason, snippet = rows[0].split("\t")
        assert int(line_no) >= 1
        assert int(offset) >= 0
        assert row_reason == reason
        assert snippet  # the offending text rides along

    def test_default_sidecar_beside_input(self, tmp_path):
        source = tmp_path / "edges.txt"
        source.write_text("0 1\nbad line here x\n1 2\n")
        _graph, report = load_graph_checked(source, policy="quarantine")
        assert report.quarantine_path == tmp_path / "edges.txt.quarantine"
        assert report.quarantine_path.exists()

    def test_clean_file_leaves_no_sidecar(self, tmp_path):
        source = tmp_path / "clean.txt"
        source.write_text("0 1\n1 2\n")
        _graph, report = load_graph_checked(source, policy="quarantine")
        assert report.rejected == 0
        assert report.quarantine_path is None
        assert not (tmp_path / "clean.txt.quarantine").exists()


class TestCaps:
    def test_unknown_policy_rejected(self, tmp_path):
        source = tmp_path / "edges.txt"
        source.write_text("0 1\n")
        with pytest.raises(ValueError, match="policy"):
            load_graph(source, policy="lenient")

    def test_max_nodes_enforced(self, tmp_path):
        source = tmp_path / "edges.txt"
        source.write_text("0 1\n1 2\n2 3\n")
        with pytest.raises(GraphError, match="max_nodes"):
            load_graph(source, max_nodes=2)
        assert load_graph(source, max_nodes=4).n == 4

    def test_max_nodes_checked_against_header_up_front(self, tmp_path):
        source = tmp_path / "edges.txt"
        source.write_text("# n=1000000\n0 1\n")
        with pytest.raises(GraphError, match="max_nodes"):
            load_graph(source, max_nodes=100)

    def test_max_edges_enforced(self, tmp_path):
        source = tmp_path / "edges.txt"
        source.write_text("".join(f"{i} {i + 1}\n" for i in range(10)))
        with pytest.raises(GraphError, match="max_edges"):
            load_graph(source, max_edges=5)
        assert load_graph(source, max_edges=10).m == 10

    def test_line_cap_is_tunable(self, tmp_path):
        source = tmp_path / "edges.txt"
        source.write_text("0 1\n1 2\n")
        # A cap shorter than any line rejects everything in strict.
        with pytest.raises(ValueError, match="byte cap"):
            load_graph(source, max_line_bytes=2)
        # And None disables the cap entirely.
        big = tmp_path / "big.txt"
        big.write_text("0 1" + " " * (DEFAULT_MAX_LINE_BYTES + 10) + "\n")
        assert load_graph(big, max_line_bytes=None).m == 1

    def test_gzip_quarantine_roundtrip(self, tmp_path):
        source = tmp_path / "edges.txt.gz"
        with gzip.open(source, "wt") as handle:
            handle.write("0 1\njunk token line\n1 2\n")
        graph, report = load_graph_checked(source, policy="quarantine")
        assert (graph.n, graph.m) == (3, 2)
        assert report.rejected == 1
        assert report.quarantine_path.exists()
