"""Primary/follower WAL shipping: determinism, fencing, catch-up.

Engine-level suite — replication runs over an injected in-process
client (no sockets), so every test is deterministic: a quorum-acked
ingest returns only after the follower holds and applied the batch,
and the two engines can be compared byte-for-byte at every step.
The socket path is covered by ``tests/test_cluster_ingest.py``
(router promotion over a live local cluster) and the chaos harness.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.durability import (
    WriteAheadLog,
    engine_state,
    quorum_size,
    record_from_wire,
    record_to_wire,
    recover_engine,
    replay_tail,
)
from repro.durability.wal import ResummarizeRecord, TermRecord, WalRecord
from repro.dynamic.summary import DynamicGraphSummary
from repro.graph import generators
from repro.resilience import CheckpointStore
from repro.service.client import ServiceError
from repro.service.engine import QueryError
from repro.service.ingest import MutableQueryEngine


@pytest.fixture(scope="module")
def base_rep():
    graph = generators.planted_partition(60, 4, 0.5, 0.05, seed=7)
    return MagsDMSummarizer(iterations=8, seed=1).summarize(
        graph
    ).representation


class _DirectClient:
    """Stand-in for ``SummaryServiceClient`` wired straight into a
    follower engine — what the primary's ``client_factory`` returns."""

    def __init__(self, engine):
        self._engine = engine
        self.closed = False

    def request(self, op, **params):
        try:
            if op == "replicate":
                return self._engine.apply_replicated(
                    params.get("term"),
                    after_lsn=params.get("after_lsn"),
                    records=params.get("records"),
                    snapshot=params.get("snapshot"),
                    promote=params.get("promote", False),
                    followers=params.get("followers"),
                    acks=params.get("acks"),
                )
            if op == "repl_status":
                return self._engine.repl_status()
        except QueryError as exc:
            raise ServiceError({"type": exc.kind, "message": str(exc)})
        raise AssertionError(f"unexpected op {op!r}")

    def close(self):
        self.closed = True


def _make_engine(base_rep, wal_dir=None):
    """A mutable engine, optionally durable (WAL + checkpoint store)."""
    wal = store = None
    if wal_dir is not None:
        wal = WriteAheadLog(wal_dir)
        store = CheckpointStore(wal_dir / "checkpoints")
    engine = MutableQueryEngine(
        DynamicGraphSummary.from_representation(base_rep), wal=wal
    )
    return engine, wal, store


def _pair(primary_engine, follower_engine, *, acks="quorum",
          follower_store=None):
    """Wire ``primary -> follower`` over a direct client."""
    follower_engine.configure_replication(
        role="follower",
        client_factory=lambda host, port: _DirectClient(primary_engine),
        store=follower_store,
    )
    primary_engine.configure_replication(
        role="primary",
        followers=[("follower", 0)],
        acks=acks,
        client_factory=lambda host, port: _DirectClient(follower_engine),
    )


def _state_bytes(engine) -> bytes:
    """One engine's full replicated state as canonical bytes."""
    with engine._state_lock:
        state = engine_state(engine)
    return json.dumps(state, sort_keys=True).encode()


def _wal_bytes(wal_dir) -> bytes:
    return b"".join(
        path.read_bytes()
        for path in sorted(wal_dir.glob("wal-*.log"))
    )


def _free_pairs(rep, count):
    """``count`` distinct non-edges of the base graph."""
    edges = set(rep.reconstruct().edges())
    pairs = []
    for u in range(rep.n):
        for v in range(u + 1, rep.n):
            if (u, v) not in edges:
                pairs.append((u, v))
                if len(pairs) == count:
                    return pairs
    raise AssertionError("graph too dense for test")


class TestWireFormat:
    def test_record_round_trip(self):
        records = [
            WalRecord(lsn=3, stream="s", seq=1,
                      mutations=(("+", 1, 2), ("-", 3, 4))),
            ResummarizeRecord(lsn=4, targets=(7, 9), max_merges=5),
            TermRecord(lsn=5, term=2),
        ]
        for record in records:
            assert record_from_wire(record_to_wire(record)) == record

    def test_malformed_wire_records_rejected(self):
        for bad in (
            {},  # no lsn
            {"lsn": 0, "stream": "s", "seq": 0, "mutations": []},
            {"lsn": 1, "term": 0},
            {"lsn": 1, "stream": "s", "seq": 0,
             "mutations": [["*", 1, 2]]},
            {"lsn": 1, "resummarize": {"targets": "x", "max_merges": 1}},
        ):
            with pytest.raises(ValueError):
                record_from_wire(bad)

    def test_quorum_sizes(self):
        assert quorum_size(1) == 1
        assert quorum_size(2) == 2
        assert quorum_size(3) == 2
        assert quorum_size(5) == 3


class TestShipping:
    def test_quorum_acked_ingest_is_bit_identical(
        self, base_rep, tmp_path
    ):
        primary, p_wal, _ = _make_engine(base_rep, tmp_path / "p")
        follower, f_wal, f_store = _make_engine(base_rep, tmp_path / "f")
        _pair(primary, follower, follower_store=f_store)
        pairs = _free_pairs(base_rep, 6)
        for seq, (u, v) in enumerate(pairs):
            primary.ingest("s", seq, [["+", u, v]])
            # Quorum over {primary, follower} is 2: the ack implies
            # the follower holds AND applied the record — states are
            # comparable immediately, no settling sleep.
            assert _state_bytes(primary) == _state_bytes(follower)
        primary.ingest("s", len(pairs), [["-", pairs[0][0], pairs[0][1]]])
        assert _state_bytes(primary) == _state_bytes(follower)
        assert primary.epoch == follower.epoch
        # The shipped log *is* the primary's log: byte-identical WALs.
        p_wal.sync()
        f_wal.sync()
        assert _wal_bytes(tmp_path / "p") == _wal_bytes(tmp_path / "f")
        primary.stop_replication()

    def test_maintenance_pass_replicates(self, base_rep, tmp_path):
        primary, _, _ = _make_engine(base_rep, tmp_path / "p")
        follower, _, f_store = _make_engine(base_rep, tmp_path / "f")
        _pair(primary, follower, follower_store=f_store)
        pairs = _free_pairs(base_rep, 4)
        for seq, (u, v) in enumerate(pairs):
            primary.ingest("s", seq, [["+", u, v]])
        outcome = primary.maintenance_pass(max_supernodes=8)
        if outcome.get("outcome") == "committed":
            # Maintenance ships in the background; force the lagging
            # follower up to date by publishing its LSN inline.
            primary._replicator.publish(outcome["lsn"])
        assert _state_bytes(primary) == _state_bytes(follower)
        primary.stop_replication()

    def test_follower_rejects_direct_ingest(self, base_rep):
        follower, _, _ = _make_engine(base_rep)
        follower.configure_replication(role="follower")
        with pytest.raises(QueryError) as excinfo:
            follower.ingest("s", 0, [["+", 0, 1]])
        assert excinfo.value.kind == "not_primary"

    def test_follower_skips_maintenance(self, base_rep):
        follower, _, _ = _make_engine(base_rep)
        follower.configure_replication(role="follower")
        assert follower.maintenance_pass() == {
            "outcome": "skipped", "reason": "follower",
        }

    def test_repl_status_reports_lag_and_role(self, base_rep):
        primary, _, _ = _make_engine(base_rep)
        follower, _, _ = _make_engine(base_rep)
        _pair(primary, follower)
        status = primary.repl_status()
        assert status["role"] == "primary"
        assert status["term"] == 1
        assert len(status["followers"]) == 1
        assert status["followers"][0]["lag"] >= 0
        assert follower.repl_status()["role"] == "follower"
        primary.stop_replication()


class TestFencingAndPromotion:
    def test_stale_term_is_fenced(self, base_rep):
        follower, _, _ = _make_engine(base_rep)
        follower.configure_replication(role="follower")
        follower.apply_replicated(
            3, after_lsn=0,
            records=[record_to_wire(TermRecord(lsn=1, term=3))],
        )
        with pytest.raises(QueryError) as excinfo:
            follower.apply_replicated(2, after_lsn=1, records=[])
        assert excinfo.value.kind == "fenced"

    def test_promotion_takes_over_and_old_primary_catches_up(
        self, base_rep, tmp_path
    ):
        a, _, _ = _make_engine(base_rep, tmp_path / "a")
        b, _, b_store = _make_engine(base_rep, tmp_path / "b")
        _pair(a, b, follower_store=b_store)
        pairs = _free_pairs(base_rep, 5)
        for seq, (u, v) in enumerate(pairs[:3]):
            a.ingest("s", seq, [["+", u, v]])
        # A "dies"; B is promoted with A as its (future) follower.
        a.stop_replication()
        status = b.apply_replicated(
            2, promote=True, followers=[["a", 0]], acks="quorum",
        )
        assert status["role"] == "primary"
        assert status["term"] == 2
        assert b.role == "primary"
        # Wire B's shipper to the revived A and write through B: the
        # quorum publish drives A's catch-up inline.  A's log has the
        # same prefix but was written under term 1 and extends past
        # B's cursor, so the term change forces a snapshot install —
        # the old primary cannot be incrementally appended over.
        b._replicator._client_factory = lambda host, port: (
            _DirectClient(a)
        )
        u, v = pairs[3]
        b.ingest("s", 3, [["+", u, v]])
        assert a.role == "follower"
        assert a.term == 2
        assert _state_bytes(a) == _state_bytes(b)
        b.stop_replication()

    def test_stale_promotion_is_fenced(self, base_rep):
        engine, _, _ = _make_engine(base_rep)
        engine.configure_replication(role="follower")
        engine.apply_replicated(
            4, after_lsn=0,
            records=[record_to_wire(TermRecord(lsn=1, term=4))],
        )
        with pytest.raises(QueryError) as excinfo:
            engine.apply_replicated(3, promote=True)
        assert excinfo.value.kind == "fenced"

    def test_replay_duplicate_across_promotion(self, base_rep):
        """The acked-then-retried batch: replicated to the follower,
        primary dies, client replays the same (stream, seq) — the
        promoted follower answers ``duplicate: true``."""
        a, _, _ = _make_engine(base_rep)
        b, _, _ = _make_engine(base_rep)
        _pair(a, b)
        u, v = _free_pairs(base_rep, 1)[0]
        first = a.ingest("client", 9, [["+", u, v]])
        assert "lsn" in first
        a.stop_replication()
        b.apply_replicated(2, promote=True)
        retry = b.ingest("client", 9, [["+", u, v]])
        assert retry["duplicate"] is True
        assert retry["applied"] == first["applied"]
        b.stop_replication()


class TestCatchUp:
    def test_follower_crash_recovery_then_incremental_catch_up(
        self, base_rep, tmp_path
    ):
        primary, _, _ = _make_engine(base_rep, tmp_path / "p")
        follower, f_wal, f_store = _make_engine(
            base_rep, tmp_path / "f"
        )
        _pair(primary, follower, follower_store=f_store)
        pairs = _free_pairs(base_rep, 6)
        for seq, (u, v) in enumerate(pairs[:3]):
            primary.ingest("s", seq, [["+", u, v]])
        # Follower "crashes": rebuild it from its own WAL + store.
        primary.stop_replication()
        f_wal.close()
        f_wal2 = WriteAheadLog(tmp_path / "f")
        revived, pending, report = recover_engine(
            base_rep, f_wal2, f_store,
            engine_factory=lambda dynamic: MutableQueryEngine(
                dynamic, wal=f_wal2
            ),
        )
        replay_tail(revived, pending, report)
        revived.configure_replication(role="follower", store=f_store)
        assert revived.term == primary.term
        # Reconnect the primary and write more; same term, so the
        # rejoin is an incremental WAL-tail ship, not a snapshot.
        primary.configure_replication(
            role="primary",
            followers=[("f", 0)],
            acks="quorum",
            client_factory=lambda host, port: _DirectClient(revived),
        )
        for seq, (u, v) in enumerate(pairs[3:], start=3):
            primary.ingest("s", seq, [["+", u, v]])
        assert _state_bytes(primary) == _state_bytes(revived)
        snapshots = [
            sample
            for sample in revived.metrics.registry.snapshot().get(
                "counters", []
            )
            if sample.get("name")
            == "repro_replication_snapshots_installed_total"
        ]
        assert not snapshots or all(
            s.get("value", 0) == 0 for s in snapshots
        )
        primary.stop_replication()

    def test_far_behind_follower_gets_snapshot(self, base_rep, tmp_path):
        primary, p_wal, p_store = _make_engine(base_rep, tmp_path / "p")
        pairs = _free_pairs(base_rep, 5)
        for seq, (u, v) in enumerate(pairs):
            primary.ingest("s", seq, [["+", u, v]])
        # Compact + truncate the primary's WAL: the incremental
        # records a fresh follower would need are gone.
        with primary._state_lock:
            state = engine_state(primary)
        p_store.save(state, step=primary.applied_lsn)
        p_wal.truncate_through(primary.applied_lsn)
        follower, _, f_store = _make_engine(base_rep, tmp_path / "f")
        follower.configure_replication(role="follower", store=f_store)
        primary.configure_replication(
            role="primary",
            followers=[("f", 0)],
            acks="quorum",
            client_factory=lambda host, port: _DirectClient(follower),
        )
        u, v = _free_pairs(base_rep, 6)[5]
        primary.ingest("s", 5, [["+", u, v]])
        assert _state_bytes(primary) == _state_bytes(follower)
        primary.stop_replication()


class TestDeterminismProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        batches=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=59),
                    st.integers(min_value=0, max_value=59),
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_primary_and_follower_identical_at_every_acked_epoch(
        self, base_rep, batches
    ):
        """The determinism contract, Hypothesis-proven: after every
        acknowledged batch the follower's edge set, epoch, and full
        serialized state equal the primary's."""
        primary, _, _ = _make_engine(base_rep)
        follower, _, _ = _make_engine(base_rep)
        _pair(primary, follower)
        edges = set(base_rep.reconstruct().edges())
        seq = 0
        try:
            for batch in batches:
                mutations = []
                staged = set(edges)
                for u, v in batch:
                    if u == v:
                        continue
                    pair = (min(u, v), max(u, v))
                    if pair in staged:
                        mutations.append(["-", pair[0], pair[1]])
                        staged.discard(pair)
                    else:
                        mutations.append(["+", pair[0], pair[1]])
                        staged.add(pair)
                if not mutations:
                    continue
                primary.ingest("prop", seq, mutations)
                seq += 1
                edges = staged
                assert primary.epoch == follower.epoch
                assert (
                    set(primary.representation.reconstruct().edges())
                    == set(
                        follower.representation.reconstruct().edges()
                    )
                    == edges
                )
                assert _state_bytes(primary) == _state_bytes(follower)
        finally:
            primary.stop_replication()
