"""Artifact-integrity tests: checksummed summaries + deep audits.

Three layers of defense, each tested here:

1. the ``# sha256`` footer catches any byte-level tamper
   (flips, deletions, appends) at load time;
2. :func:`repro.core.verify.deep_audit` catches *semantic*
   corruption that still parses — inconsistent corrections, dropped
   super-edges, wrong costs — with or without the original graph;
3. the ``repro verify`` CLI surfaces both with nonzero exits.

A corruption that yields a *valid encoding of a different graph*
(e.g. a spurious, non-conflicting plus-correction) is undetectable
without ground truth by design; those cases assert detection only
when the original graph is supplied.
"""

import dataclasses

import pytest

from repro.algorithms.mags import MagsSummarizer
from repro.cli import main as cli_main
from repro.core.serialization import (
    FormatError,
    load_representation,
    load_representation_checked,
    save_representation,
)
from repro.core.verify import deep_audit
from repro.graph.generators import planted_partition
from repro.graph.io import save_graph


@pytest.fixture(scope="module")
def graph():
    return planted_partition(120, 8, 0.6, 0.04, seed=11)


@pytest.fixture(scope="module")
def rep(graph):
    return MagsSummarizer(iterations=8, seed=1).summarize(graph).representation


class TestChecksum:
    def test_roundtrip_is_verified(self, rep, tmp_path):
        path = tmp_path / "summary.txt"
        save_representation(path, rep)
        loaded, status = load_representation_checked(path)
        assert status == "verified"
        assert loaded.cost == rep.cost

    def test_gzip_roundtrip_is_verified(self, rep, tmp_path):
        path = tmp_path / "summary.txt.gz"
        save_representation(path, rep)
        _loaded, status = load_representation_checked(path)
        assert status == "verified"

    def test_legacy_file_without_footer_loads_as_absent(self, rep, tmp_path):
        path = tmp_path / "summary.txt"
        save_representation(path, rep)
        lines = path.read_text().splitlines(keepends=True)
        assert lines[-1].startswith("# sha256 ")
        legacy = tmp_path / "legacy.txt"
        legacy.write_text("".join(lines[:-1]))
        loaded, status = load_representation_checked(legacy)
        assert status == "absent"
        assert loaded.cost == rep.cost

    @pytest.mark.parametrize("mutation", ["flip", "delete", "append"])
    def test_tamper_is_caught(self, rep, tmp_path, mutation):
        path = tmp_path / "summary.txt"
        save_representation(path, rep)
        lines = path.read_text().splitlines(keepends=True)
        record = next(
            i for i, line in enumerate(lines) if line.startswith("E ")
        )
        if mutation == "flip":
            u, v = lines[record].split()[1:]
            lines[record] = f"E {u} {int(v) + 1}\n"
        elif mutation == "delete":
            del lines[record]
        else:  # append after the footer
            lines.append("+ 0 1\n")
        path.write_text("".join(lines))
        with pytest.raises(FormatError, match="checksum|after the sha256"):
            load_representation(path)

    def test_duplicate_footer_rejected(self, rep, tmp_path):
        path = tmp_path / "summary.txt"
        save_representation(path, rep)
        footer = path.read_text().splitlines(keepends=True)[-1]
        with open(path, "a") as handle:
            handle.write(footer)
        with pytest.raises(FormatError, match="duplicate"):
            load_representation(path)

    def test_pre_footer_comments_are_covered(self, rep, tmp_path):
        # A comment inserted before the footer changes the content the
        # footer covers, so it must fail (comments are hashed too).
        path = tmp_path / "summary.txt"
        save_representation(path, rep)
        lines = path.read_text().splitlines(keepends=True)
        lines.insert(2, "# innocuous note\n")
        path.write_text("".join(lines))
        with pytest.raises(FormatError, match="checksum"):
            load_representation(path)


def _mutate(rep, **changes):
    return dataclasses.replace(rep, **changes)


def _superedge_with_removals(rep):
    """The stored summary-edge tuple some minus-correction depends on."""
    for u, v in rep.removals:
        pu, pv = rep.node_to_supernode[u], rep.node_to_supernode[v]
        for su, sv in rep.summary_edges:
            if {su, sv} == {pu, pv} or (pu == pv == su == sv):
                return (su, sv)
    raise AssertionError("fixture has no removal-bearing super-edge")


class TestDeepAudit:
    def test_clean_artifact_has_no_findings(self, rep, graph):
        assert deep_audit(rep) == []
        assert deep_audit(rep, graph) == []

    def test_orphan_minus_correction_caught_without_graph(self, rep):
        # A removal whose endpoints' super-nodes share no summary edge
        # is dead weight no correct writer emits.
        u, v = 0, 1
        corrupted = _mutate(
            rep,
            removals=rep.removals | {(u, v)},
            summary_edges=set(),
        )
        findings = deep_audit(corrupted)
        assert any("not implied by any summary edge" in f for f in findings)

    def test_dropped_superedge_caught_without_graph(self, rep):
        # Dropping a super-edge that has minus-corrections strands
        # them: the audit fires with no ground truth available.  (A
        # super-edge with *no* corrections would decode to a valid
        # encoding of a different graph — see the next test.)
        victim = _superedge_with_removals(rep)
        corrupted = _mutate(
            rep, summary_edges=rep.summary_edges - {victim}
        )
        findings = deep_audit(corrupted)
        assert any("not implied by any summary edge" in f for f in findings)

    def test_spurious_addition_needs_ground_truth(self, rep, graph):
        # Add a plus-correction for a pair no summary edge implies:
        # the artifact is a *valid* encoding of a slightly different
        # graph — internally undetectable, caught only against the
        # original.
        pair = None
        edges = graph.edge_set()
        superedges = {
            (min(a, b), max(a, b)) for a, b in rep.summary_edges
        }
        for u in range(graph.n):
            for v in range(u + 1, graph.n):
                pu, pv = rep.node_to_supernode[u], rep.node_to_supernode[v]
                if (
                    (u, v) not in edges
                    and (min(pu, pv), max(pu, pv)) not in superedges
                ):
                    pair = (u, v)
                    break
            if pair:
                break
        assert pair is not None
        corrupted = _mutate(rep, additions=rep.additions | {pair})
        assert deep_audit(corrupted, graph) != []

    def test_broken_partition_caught(self, rep):
        # Drop a node from one super-node: no longer a partition.
        sid = next(
            s for s, members in rep.supernodes.items() if len(members) > 1
        )
        broken_supernodes = {
            s: list(m) for s, m in rep.supernodes.items()
        }
        broken_supernodes[sid] = broken_supernodes[sid][:-1]
        corrupted = _mutate(rep, supernodes=broken_supernodes)
        assert deep_audit(corrupted) == [
            "super-nodes are not a partition of 0..n-1"
        ]

    def test_both_signs_caught(self, rep):
        pair = next(iter(rep.additions or rep.removals))
        corrupted = _mutate(
            rep,
            additions=rep.additions | {pair},
            removals=rep.removals | {pair},
        )
        findings = deep_audit(corrupted)
        assert any("both signs" in f for f in findings)


class TestVerifyCLI:
    def _write(self, tmp_path, rep, graph):
        summary = tmp_path / "summary.txt"
        edges = tmp_path / "graph.txt"
        save_representation(summary, rep)
        save_graph(edges, graph)
        return summary, edges

    def test_ok_paths(self, rep, graph, tmp_path, capsys):
        summary, edges = self._write(tmp_path, rep, graph)
        assert cli_main(["verify", str(summary)]) == 0
        assert cli_main(["verify", str(summary), "--deep"]) == 0
        assert (
            cli_main(
                ["verify", str(summary), "--graph", str(edges), "--deep"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "checksum: verified" in out
        assert "deep audit" in out

    def test_tampered_file_exits_nonzero(self, rep, graph, tmp_path, capsys):
        summary, _edges = self._write(tmp_path, rep, graph)
        content = summary.read_text().replace("E ", "E 9999", 1)
        summary.write_text(content)
        assert cli_main(["verify", str(summary)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_semantic_corruption_needs_deep(self, rep, graph, tmp_path):
        # Re-save a structurally-valid but inconsistent artifact:
        # drop a removal-bearing summary edge and re-checksum
        # (simulating a buggy writer that signs what it writes).
        victim = _superedge_with_removals(rep)
        corrupted = _mutate(
            rep, summary_edges=rep.summary_edges - {victim}
        )
        summary = tmp_path / "corrupted.txt"
        save_representation(summary, corrupted)
        # Parses fine, checksum matches (the writer signed it)...
        assert cli_main(["verify", str(summary)]) == 0
        # ...but the deep audit sees the non-optimal encoding.
        assert cli_main(["verify", str(summary), "--deep"]) == 1

    def test_graph_mismatch_caught_without_deep(
        self, rep, graph, tmp_path
    ):
        summary, _edges = self._write(tmp_path, rep, graph)
        other = planted_partition(120, 8, 0.6, 0.04, seed=99)
        edges = tmp_path / "other.txt"
        save_graph(edges, other)
        assert (
            cli_main(["verify", str(summary), "--graph", str(edges)]) == 1
        )

    def test_unreadable_file_exits_nonzero(self, tmp_path):
        bogus = tmp_path / "bogus.txt"
        bogus.write_text("not a summary\n")
        assert cli_main(["verify", str(bogus)]) == 1
