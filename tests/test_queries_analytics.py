"""Tests for the summary-side analytics queries."""

import numpy as np
import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.encoding import encode
from repro.core.minhash import exact_jaccard
from repro.core.supernodes import SuperNodePartition
from repro.queries.analytics import (
    common_neighbors,
    degree_distribution,
    degree_vector,
    jaccard_similarity,
    top_degree_nodes,
)
from repro.queries.neighbors import SummaryNeighborIndex


@pytest.fixture(scope="module")
def summarized_pair():
    from repro.graph.generators import templated_web

    graph = templated_web(250, 12, 40, 6, 0.1, seed=21)
    rep = MagsDMSummarizer(iterations=10, seed=1).summarize(graph).representation
    return graph, rep


class TestDegreeVector:
    def test_matches_graph_degrees(self, summarized_pair):
        graph, rep = summarized_pair
        np.testing.assert_array_equal(degree_vector(rep), graph.degrees())

    def test_singleton_encoding(self, paper_like_graph):
        rep = encode(SuperNodePartition(paper_like_graph))
        np.testing.assert_array_equal(
            degree_vector(rep), paper_like_graph.degrees()
        )

    def test_clique_with_self_edge(self, clique_graph):
        p = SuperNodePartition(clique_graph)
        root = 0
        for v in range(1, 6):
            root = p.merge(root, p.find(v))
        rep = encode(p)
        assert (degree_vector(rep) == 5).all()


class TestDegreeDistribution:
    def test_matches_histogram(self, summarized_pair):
        graph, rep = summarized_pair
        from repro.graph.stats import degree_histogram

        assert degree_distribution(rep) == degree_histogram(graph)

    def test_counts_sum_to_n(self, summarized_pair):
        graph, rep = summarized_pair
        assert sum(degree_distribution(rep).values()) == graph.n


class TestPairQueries:
    def test_common_neighbors_exact(self, summarized_pair):
        graph, rep = summarized_pair
        index = SummaryNeighborIndex(rep)
        for u, v in [(0, 1), (5, 10), (40, 41), (100, 200)]:
            expected = set(graph.neighbors(u)) & set(graph.neighbors(v))
            assert common_neighbors(index, u, v) == expected

    def test_jaccard_matches_exact(self, summarized_pair):
        graph, rep = summarized_pair
        index = SummaryNeighborIndex(rep)
        for u, v in [(0, 1), (5, 10), (40, 41)]:
            assert jaccard_similarity(index, u, v) == pytest.approx(
                exact_jaccard(graph, u, v)
            )

    def test_jaccard_of_isolated_pair(self):
        from repro.graph.graph import Graph

        g = Graph(4, [(0, 1)])
        rep = encode(SuperNodePartition(g))
        index = SummaryNeighborIndex(rep)
        assert jaccard_similarity(index, 2, 3) == 0.0


class TestTopDegree:
    def test_star_hub_first(self, star_graph):
        rep = encode(SuperNodePartition(star_graph))
        top = top_degree_nodes(rep, 3)
        assert top[0] == (0, 9)
        assert all(degree == 1 for __, degree in top[1:])

    def test_count_zero(self, star_graph):
        rep = encode(SuperNodePartition(star_graph))
        assert top_degree_nodes(rep, 0) == []

    def test_negative_count_rejected(self, star_graph):
        rep = encode(SuperNodePartition(star_graph))
        with pytest.raises(ValueError):
            top_degree_nodes(rep, -1)

    def test_deterministic_tie_breaking(self, triangle):
        rep = encode(SuperNodePartition(triangle))
        assert top_degree_nodes(rep, 3) == [(0, 2), (1, 2), (2, 2)]
