"""Tests for the TCP server, client, protocol framing and metrics."""

import socket
import threading
import time

import pytest

from repro import obs
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.queries.neighbors import neighbor_query
from repro.service import (
    QueryEngine,
    ServiceError,
    ServiceMetrics,
    SummaryQueryServer,
    SummaryServiceClient,
)
from repro.service.metrics import LatencyRecorder
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_message,
)


@pytest.fixture(scope="module")
def rep():
    from repro.graph import generators

    graph = generators.planted_partition(150, 10, 0.7, 0.02, seed=42)
    return (
        MagsDMSummarizer(iterations=8, seed=1)
        .summarize(graph)
        .representation
    )


@pytest.fixture
def server(rep):
    engine = QueryEngine(rep, cache_size=256)
    with SummaryQueryServer(engine, workers=8, request_timeout=5.0) as srv:
        yield srv


@pytest.fixture
def client(server):
    host, port = server.address
    with SummaryServiceClient(host, port) as cli:
        yield cli


class TestProtocol:
    def test_roundtrip(self):
        message = {"id": 1, "op": "neighbors", "node": 5}
        assert decode_line(encode_message(message).rstrip(b"\n")) == message

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2]")

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_line(b"{nope")

    def test_oversized_line_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_line(b" " * (MAX_LINE_BYTES + 1))


class TestBasicOps:
    def test_ping(self, client):
        assert client.ping() == "pong"

    def test_neighbors_and_degree(self, client, rep):
        for q in (0, 7, 149):
            want = neighbor_query(rep, q)
            assert set(client.neighbors(q)) == want
            assert client.degree(q) == len(want)

    def test_khop(self, client):
        distances = client.khop(0, 2)
        assert distances[0] == 0
        assert all(d <= 2 for d in distances.values())

    def test_pagerank(self, client):
        assert isinstance(client.pagerank_score(3), float)

    def test_batch(self, client, rep):
        requests = [
            {"id": i, "op": "neighbors", "node": i % 10} for i in range(40)
        ]
        responses = client.batch(requests)
        assert len(responses) == 40
        assert all(r["ok"] for r in responses)
        assert responses[11]["result"] == sorted(neighbor_query(rep, 1))

    def test_stats(self, client):
        client.neighbors(0)
        stats = client.stats()
        assert stats["requests_total"] >= 1
        assert "latency_ms" in stats
        assert stats["connections"]["active"] >= 1


class TestErrors:
    def test_out_of_range_is_structured(self, client):
        with pytest.raises(ServiceError, match="out of range") as info:
            client.neighbors(10**6)
        assert info.value.type == "bad_request"

    def test_unknown_op(self, client):
        with pytest.raises(ServiceError) as info:
            client.request("frobnicate")
        assert info.value.type == "bad_request"

    def test_malformed_json_keeps_connection_alive(self, client):
        client._sock.sendall(b"this is not json\n")
        response = decode_line(client._reader.readline())
        assert response["ok"] is False
        assert response["error"]["type"] == "bad_request"
        # The same connection still answers real requests.
        assert client.ping() == "pong"

    def test_batch_without_list_rejected(self, client):
        with pytest.raises(ServiceError, match="requests"):
            client.request("batch", requests="nope")

    def test_timeout_is_structured(self, rep):
        engine = QueryEngine(rep, cache_size=0)
        with SummaryQueryServer(
            engine, workers=2, request_timeout=0.0
        ) as srv:
            host, port = srv.address
            with SummaryServiceClient(host, port) as cli:
                with pytest.raises(ServiceError) as info:
                    cli.khop(0, 4)
                assert info.value.type == "timeout"


class TestConcurrency:
    def test_eight_threads_zero_mismatches(self, server, rep):
        host, port = server.address
        mismatches = []
        crashes = []

        def worker(tid):
            try:
                with SummaryServiceClient(host, port) as cli:
                    for q in range(tid, rep.n, 8):
                        if set(cli.neighbors(q)) != neighbor_query(rep, q):
                            mismatches.append(q)
                        if not isinstance(cli.pagerank_score(q), float):
                            mismatches.append(("pr", q))
                    responses = cli.batch([
                        {"id": i, "op": "degree", "node": (tid + i) % rep.n}
                        for i in range(25)
                    ])
                    if not all(r["ok"] for r in responses):
                        mismatches.append(("batch", tid))
                    cli.stats()
            except Exception as exc:  # pragma: no cover
                crashes.append((tid, repr(exc)))

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert crashes == []
        assert mismatches == []

    def test_sequential_connections_reuse_workers(self, server, rep):
        host, port = server.address
        for _ in range(12):
            with SummaryServiceClient(host, port) as cli:
                assert cli.ping() == "pong"


class TestShutdown:
    def test_shutdown_op_stops_server(self, rep):
        engine = QueryEngine(rep)
        server = SummaryQueryServer(engine, workers=2).start()
        host, port = server.address
        done = threading.Event()
        thread = threading.Thread(
            target=lambda: (
                server.serve_forever(install_signal_handlers=False),
                done.set(),
            )
        )
        thread.start()
        with SummaryServiceClient(host, port) as cli:
            assert cli.shutdown_server() == "shutting down"
        thread.join(timeout=10)
        assert done.is_set()
        # The listener is gone: new connections are refused.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)

    def test_close_is_idempotent(self, rep):
        server = SummaryQueryServer(QueryEngine(rep), workers=2).start()
        server.close()
        server.close()

    def test_inflight_request_completes_during_shutdown(self, rep):
        engine = QueryEngine(rep)
        server = SummaryQueryServer(engine, workers=2).start()
        host, port = server.address
        with SummaryServiceClient(host, port) as cli:
            assert cli.ping() == "pong"
            server.shutdown()
            server.close()
        # Connection count balanced after close.
        active = engine.metrics.snapshot()["connections"]["active"]
        assert active == 0


class TestTracing:
    def test_requests_wrapped_in_service_spans(self, client):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            client.neighbors(0)
            client.ping()
        spans = [
            r for r in tracer.records() if r["name"] == "service:request"
        ]
        ops = [r["attrs"]["op"] for r in spans]
        assert ops.count("neighbors") == 1
        assert ops.count("ping") == 1
        assert all(r["attrs"]["ok"] is True for r in spans)

    def test_untraced_requests_record_nothing(self, client):
        client.ping()
        assert not obs.get_tracer().enabled

    def test_stats_prometheus_over_the_wire(self, client):
        client.neighbors(0)
        text = client.request("stats", format="prometheus")
        assert isinstance(text, str)
        assert "# TYPE service_requests_total counter" in text
        assert 'service_requests_total{op="neighbors"}' in text


class TestMetrics:
    def test_latency_percentiles_nearest_rank(self):
        recorder = LatencyRecorder()
        for ms in range(1, 101):  # 1..100 ms
            recorder.record(ms / 1000.0)
        snap = recorder.snapshot()
        assert snap["count"] == 100
        assert snap["p50_ms"] == 50.0
        assert snap["p95_ms"] == 95.0
        assert snap["p99_ms"] == 99.0
        assert snap["max_ms"] == 100.0

    def test_reservoir_bounds_memory(self):
        recorder = LatencyRecorder(reservoir=10)
        for _ in range(1000):
            recorder.record(0.001)
        snap = recorder.snapshot()
        assert snap["count"] == 1000  # total count survives
        assert len(recorder._samples) == 10  # window bounded

    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.observe("neighbors", 0.002)
        metrics.observe("neighbors", 0.004, ok=False)
        metrics.cache_hit()
        metrics.cache_miss()
        snap = metrics.snapshot()
        assert snap["requests_total"] == 2
        assert snap["errors_total"] == 1
        assert snap["cache"]["hit_rate"] == 0.5
        assert snap["latency_ms"]["neighbors"]["count"] == 2

    def test_log_line_mentions_key_numbers(self):
        metrics = ServiceMetrics()
        metrics.observe("neighbors", 0.001)
        line = metrics.log_line()
        assert "requests=1" in line
        assert "cache_hit_rate=" in line

    def test_uptime_advances(self):
        metrics = ServiceMetrics()
        first = metrics.snapshot()["uptime_s"]
        time.sleep(0.01)
        assert metrics.snapshot()["uptime_s"] >= first
