"""Tests for the on-disk summary format."""

import pytest

from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.encoding import encode
from repro.core.serialization import (
    FormatError,
    load_representation,
    save_representation,
)
from repro.core.supernodes import SuperNodePartition
from repro.core.verify import verify_lossless


def _summarize(graph, T=8):
    return MagsDMSummarizer(iterations=T, seed=1).summarize(graph).representation


class TestRoundtrip:
    def test_exact_roundtrip(self, tmp_path, paper_like_graph):
        rep = _summarize(paper_like_graph)
        path = tmp_path / "summary.txt"
        save_representation(path, rep)
        loaded = load_representation(path)
        assert loaded.n == rep.n
        assert loaded.m == rep.m
        assert loaded.supernodes.keys() == rep.supernodes.keys()
        assert loaded.summary_edges == rep.summary_edges
        assert loaded.additions == rep.additions
        assert loaded.removals == rep.removals

    def test_loaded_representation_reconstructs(self, tmp_path, community_graph):
        rep = _summarize(community_graph)
        path = tmp_path / "summary.txt"
        save_representation(path, rep)
        loaded = load_representation(path)
        verify_lossless(community_graph, loaded)

    def test_gzip_roundtrip(self, tmp_path, twin_graph):
        rep = _summarize(twin_graph)
        path = tmp_path / "summary.txt.gz"
        save_representation(path, rep)
        verify_lossless(twin_graph, load_representation(path))

    def test_singleton_encoding_roundtrip(self, tmp_path, triangle):
        rep = encode(SuperNodePartition(triangle))
        path = tmp_path / "summary.txt"
        save_representation(path, rep)
        verify_lossless(triangle, load_representation(path))

    def test_deterministic_output(self, tmp_path, community_graph):
        rep = _summarize(community_graph)
        p1, p2 = tmp_path / "a.txt", tmp_path / "b.txt"
        save_representation(p1, rep)
        save_representation(p2, rep)
        assert p1.read_text() == p2.read_text()

    def test_mags_output_roundtrip(self, tmp_path, community_graph):
        rep = MagsSummarizer(iterations=8, seed=2).summarize(
            community_graph
        ).representation
        path = tmp_path / "mags.txt"
        save_representation(path, rep)
        verify_lossless(community_graph, load_representation(path))


class TestFormatErrors:
    def _write(self, tmp_path, text):
        path = tmp_path / "bad.txt"
        path.write_text(text)
        return path

    def test_bad_header(self, tmp_path):
        path = self._write(tmp_path, "not a summary\n")
        with pytest.raises(FormatError, match="header"):
            load_representation(path)

    def test_missing_g_record(self, tmp_path):
        path = self._write(tmp_path, "# repro summary v1\nS 0 0\n")
        with pytest.raises(FormatError, match="missing G"):
            load_representation(path)

    def test_unknown_record(self, tmp_path):
        path = self._write(
            tmp_path, "# repro summary v1\nG 1 0\nX nonsense\n"
        )
        with pytest.raises(FormatError, match="unknown record"):
            load_representation(path)

    def test_future_version_rejected_with_version_message(self, tmp_path):
        path = self._write(
            tmp_path, "# repro summary v2\nG 1 0\nS 0 0\n"
        )
        with pytest.raises(FormatError, match="v2 is not supported"):
            load_representation(path)
        with pytest.raises(FormatError, match="newer version"):
            load_representation(path)

    def test_binary_junk_rejected_with_roundtrip_message(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_bytes(b"\x00\xff\xfe not a summary at all")
        with pytest.raises(FormatError, match="not a readable"):
            load_representation(path)

    def test_gz_garbage_rejected_with_roundtrip_message(self, tmp_path):
        path = tmp_path / "bad.txt.gz"
        path.write_bytes(b"this is not gzip data")
        with pytest.raises(FormatError, match="not a readable"):
            load_representation(path)

    def test_gz_truncation_rejected(self, tmp_path, twin_graph):
        rep = _summarize(twin_graph)
        path = tmp_path / "summary.txt.gz"
        save_representation(path, rep)
        truncated = tmp_path / "truncated.txt.gz"
        truncated.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(FormatError, match="not a readable"):
            load_representation(truncated)

    def test_gz_exact_field_roundtrip(self, tmp_path, paper_like_graph):
        rep = _summarize(paper_like_graph)
        path = tmp_path / "summary.txt.gz"
        save_representation(path, rep)
        loaded = load_representation(path)
        assert loaded.n == rep.n
        assert loaded.m == rep.m
        assert {
            s: sorted(v) for s, v in loaded.supernodes.items()
        } == {s: sorted(v) for s, v in rep.supernodes.items()}
        assert loaded.node_to_supernode == rep.node_to_supernode
        assert loaded.summary_edges == rep.summary_edges
        assert loaded.additions == rep.additions
        assert loaded.removals == rep.removals

    def test_malformed_numbers(self, tmp_path):
        path = self._write(
            tmp_path, "# repro summary v1\nG 1 0\nS zero one\n"
        )
        with pytest.raises(FormatError, match="malformed"):
            load_representation(path)

    def test_duplicate_supernode(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro summary v1\nG 2 0\nS 0 0\nS 0 1\n",
        )
        with pytest.raises(FormatError, match="duplicate"):
            load_representation(path)

    def test_partition_gap_detected(self, tmp_path):
        path = self._write(
            tmp_path, "# repro summary v1\nG 3 0\nS 0 0\nS 1 1\n"
        )
        with pytest.raises(FormatError, match="partition"):
            load_representation(path)

    def test_dangling_superedge(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro summary v1\nG 2 1\nS 0 0\nS 1 1\nE 0 7\n",
        )
        with pytest.raises(FormatError, match="unknown id"):
            load_representation(path)

    def test_empty_supernode(self, tmp_path):
        path = self._write(
            tmp_path, "# repro summary v1\nG 1 0\nS 0\n"
        )
        with pytest.raises(FormatError, match="empty super-node"):
            load_representation(path)


class TestCrossFormatConsistency:
    def test_text_and_binary_agree(self, tmp_path, community_graph):
        """The text format and the binary codec must describe the same
        representation (same reconstruction, same cost)."""
        from repro.compression.codec import SummaryCodec

        rep = _summarize(community_graph)
        path = tmp_path / "summary.txt"
        save_representation(path, rep)
        from_text = load_representation(path)
        from_blob = SummaryCodec.decode(SummaryCodec.encode(rep))
        assert (
            from_text.reconstruct_edges()
            == from_blob.reconstruct_edges()
            == community_graph.edge_set()
        )
        assert from_text.cost == from_blob.cost == rep.cost

    def test_binary_blob_is_smaller_than_text(self, community_graph):
        from repro.compression.codec import SummaryCodec

        rep = _summarize(community_graph)
        # Approximate the text size without touching disk.
        text_size = sum(
            len(line)
            for line in (
                f"S {sid} {' '.join(map(str, m))}\n"
                for sid, m in rep.supernodes.items()
            )
        ) + 7 * (len(rep.additions) + len(rep.removals) + len(rep.summary_edges))
        blob = SummaryCodec.encode(rep)
        assert len(blob) < text_size
