"""Direct tests for the shared divide-and-merge helpers."""

import random

import numpy as np
import pytest

from repro.algorithms._dm_common import (
    divide_by_single_hash,
    divide_recursive,
    group_similarities,
    shuffled_rows,
)
from repro.core.minhash import MinHashSignatures
from repro.graph.graph import Graph


class TestShuffledRows:
    def test_is_permutation(self):
        rows = shuffled_rows(10, random.Random(1))
        assert sorted(rows) == list(range(10))

    def test_deterministic_per_rng_state(self):
        assert shuffled_rows(8, random.Random(5)) == shuffled_rows(
            8, random.Random(5)
        )

    def test_varies_with_state(self):
        outputs = {tuple(shuffled_rows(8, random.Random(s))) for s in range(6)}
        assert len(outputs) > 1


class TestGroupSimilarities:
    def test_matches_pairwise_similarity(self, twin_graph):
        sig = MinHashSignatures(twin_graph, 16, seed=2)
        group = [1, 2, 3, 4]
        sims = group_similarities(sig, 0, group)
        for value, v in zip(sims, group):
            assert value == pytest.approx(sig.similarity(0, v))

    def test_self_similarity_is_one(self, triangle):
        sig = MinHashSignatures(triangle, 8, seed=2)
        sims = group_similarities(sig, 0, [0, 1])
        assert sims[0] == pytest.approx(1.0)

    def test_returns_numpy_vector(self, triangle):
        sig = MinHashSignatures(triangle, 8, seed=2)
        sims = group_similarities(sig, 0, [1, 2])
        assert isinstance(sims, np.ndarray)
        assert sims.shape == (2,)


class TestDividers:
    def test_single_hash_groups_partition_input(self, community_graph):
        sig = MinHashSignatures(community_graph, 4, seed=3)
        roots = list(community_graph.nodes())
        groups = divide_by_single_hash(roots, sig, 0)
        flattened = [r for g in groups for r in g]
        assert len(flattened) == len(set(flattened))
        assert set(flattened) <= set(roots)

    def test_recursive_divider_with_cap_one_matches_single_hash(
        self, community_graph
    ):
        """Forcing a split at every level with only one hash function
        available degenerates to single-hash dividing."""
        sig = MinHashSignatures(community_graph, 8, seed=3)
        roots = list(community_graph.nodes())
        single = divide_by_single_hash(roots, sig, 0)
        recursive = divide_recursive(roots, sig, [0], 1)
        assert sorted(map(sorted, single)) == sorted(map(sorted, recursive))

    def test_recursive_divider_keeps_groups_under_cap_whole(
        self, community_graph
    ):
        sig = MinHashSignatures(community_graph, 8, seed=3)
        roots = list(community_graph.nodes())
        groups = divide_recursive(roots, sig, list(range(8)), 10_000)
        # Cap larger than n: the whole root set stays one group.
        assert groups == [roots]

    def test_recursive_divider_zero_depth_keeps_group(self):
        g = Graph(4, [(0, 1), (2, 3)])
        sig = MinHashSignatures(g, 4, seed=1)
        groups = divide_recursive([0, 1, 2, 3], sig, [], 2)
        assert groups == [[0, 1, 2, 3]]

    def test_identical_signature_group_not_split(self, twin_graph):
        sig = MinHashSignatures(twin_graph, 6, seed=4)
        # Nodes 0 and 1 share all signatures; cap of 1 cannot split them.
        groups = divide_recursive([0, 1], sig, list(range(6)), 1)
        assert groups == [[0, 1]]
