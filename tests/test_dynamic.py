"""Tests for dynamic graph summarization (corrections overlay)."""

import random

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.verify import verify_lossless
from repro.dynamic import DynamicGraphSummary
from repro.graph.generators import planted_partition
from repro.graph.graph import Graph


def _dynamic(graph, rebuild_factor=None):
    return DynamicGraphSummary(
        graph,
        summarizer_factory=lambda: MagsDMSummarizer(iterations=8, seed=1),
        rebuild_factor=rebuild_factor,
    )


class TestConstruction:
    def test_initial_state_matches_graph(self, paper_like_graph):
        dyn = _dynamic(paper_like_graph)
        assert dyn.n == paper_like_graph.n
        assert dyn.m == paper_like_graph.m
        assert dyn.to_graph() == paper_like_graph

    def test_invalid_rebuild_factor(self, triangle):
        with pytest.raises(ValueError):
            DynamicGraphSummary(triangle, rebuild_factor=0.5)

    def test_relative_size_sane(self, community_graph):
        dyn = _dynamic(community_graph)
        assert 0 < dyn.relative_size <= 1.0


class TestEdgeUpdates:
    def test_insert_then_query(self, paper_like_graph):
        dyn = _dynamic(paper_like_graph)
        assert not dyn.has_edge(0, 7)
        dyn.insert_edge(0, 7)
        assert dyn.has_edge(0, 7)
        assert 7 in dyn.neighbors(0)
        assert dyn.m == paper_like_graph.m + 1

    def test_delete_then_query(self, paper_like_graph):
        dyn = _dynamic(paper_like_graph)
        dyn.delete_edge(0, 2)
        assert not dyn.has_edge(0, 2)
        assert 2 not in dyn.neighbors(0)
        assert dyn.m == paper_like_graph.m - 1

    def test_delete_edge_covered_by_superedge(self, clique_graph):
        dyn = _dynamic(clique_graph)
        dyn.delete_edge(0, 1)
        assert not dyn.has_edge(0, 1)
        rep = dyn.to_representation()
        assert rep.reconstruct_edges() == clique_graph.edge_set() - {(0, 1)}

    def test_insert_cancels_removal_correction(self, clique_graph):
        dyn = _dynamic(clique_graph)
        cost_before = dyn.cost
        dyn.delete_edge(0, 1)
        dyn.insert_edge(0, 1)
        assert dyn.cost == cost_before
        assert dyn.to_graph() == clique_graph

    def test_delete_cancels_addition_correction(self, path_graph):
        dyn = _dynamic(path_graph)
        dyn.insert_edge(0, 5)
        dyn.delete_edge(0, 5)
        assert dyn.to_graph() == path_graph

    def test_duplicate_insert_rejected(self, triangle):
        dyn = _dynamic(triangle)
        with pytest.raises(ValueError, match="already exists"):
            dyn.insert_edge(0, 1)

    def test_missing_delete_rejected(self, path_graph):
        dyn = _dynamic(path_graph)
        with pytest.raises(ValueError, match="does not exist"):
            dyn.delete_edge(0, 5)

    def test_self_loop_rejected(self, triangle):
        dyn = _dynamic(triangle)
        with pytest.raises(ValueError, match="self-loop"):
            dyn.insert_edge(1, 1)

    def test_out_of_range_rejected(self, triangle):
        dyn = _dynamic(triangle)
        with pytest.raises(IndexError):
            dyn.insert_edge(0, 99)


class TestAddNode:
    def test_new_node_is_isolated(self, triangle):
        dyn = _dynamic(triangle)
        node = dyn.add_node()
        assert node == 3
        assert dyn.neighbors(node) == set()

    def test_new_node_can_gain_edges(self, triangle):
        dyn = _dynamic(triangle)
        node = dyn.add_node()
        dyn.insert_edge(node, 0)
        assert dyn.neighbors(node) == {0}
        verify_lossless(dyn.to_graph(), dyn.to_representation())


class TestExactness:
    def test_random_update_sequence_stays_exact(self, community_graph):
        """The core contract: after any update sequence, the overlay
        reconstructs the evolved graph exactly."""
        dyn = _dynamic(community_graph)
        edges = set(community_graph.edge_set())
        rng = random.Random(7)
        universe = [
            (u, v)
            for u in range(community_graph.n)
            for v in range(u + 1, community_graph.n)
        ]
        for __ in range(300):
            u, v = universe[rng.randrange(len(universe))]
            if (u, v) in edges:
                dyn.delete_edge(u, v)
                edges.discard((u, v))
            else:
                dyn.insert_edge(u, v)
                edges.add((u, v))
        assert dyn.to_graph().edge_set() == edges
        for q in range(0, community_graph.n, 13):
            expected = {b if a == q else a for a, b in edges if q in (a, b)}
            assert dyn.neighbors(q) == expected

    def test_snapshot_is_verifiable(self, community_graph):
        dyn = _dynamic(community_graph)
        dyn.delete_edge(*next(iter(community_graph.edges())))
        verify_lossless(dyn.to_graph(), dyn.to_representation())


class TestRebuilds:
    def test_automatic_rebuild_fires(self):
        graph = planted_partition(100, 5, 0.8, 0.02, seed=3)
        dyn = _dynamic(graph, rebuild_factor=1.05)
        rng = random.Random(1)
        inserted = set()
        while dyn.num_rebuilds == 0 and len(inserted) < 2_000:
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u != v and not dyn.has_edge(u, v):
                dyn.insert_edge(u, v)
                inserted.add((u, v))
        assert dyn.num_rebuilds >= 1

    def test_rebuild_preserves_graph(self, community_graph):
        dyn = _dynamic(community_graph)
        dyn.delete_edge(*next(iter(community_graph.edges())))
        before = dyn.to_graph()
        dyn.resummarize()
        assert dyn.to_graph() == before
        assert dyn.num_rebuilds == 1

    def test_rebuild_restores_compactness(self):
        """Structured drift inflates the correction set; a rebuild
        re-compacts.  Completing every community into a clique makes
        the evolved graph *more* compressible, but the frozen overlay
        can only express the new edges as corrections."""
        graph = planted_partition(120, 6, 0.6, 0.0, seed=5)
        dyn = _dynamic(graph, rebuild_factor=None)
        for u in range(graph.n):
            for v in range(u + 1, graph.n):
                if u % 6 == v % 6 and not dyn.has_edge(u, v):
                    dyn.insert_edge(u, v)
        drifted = dyn.cost
        dyn.resummarize()
        assert dyn.cost < drifted

    def test_no_auto_rebuild_when_disabled(self, community_graph):
        dyn = _dynamic(community_graph, rebuild_factor=None)
        for u, v in list(community_graph.edges())[:50]:
            dyn.delete_edge(u, v)
        assert dyn.num_rebuilds == 0


class TestLocalResummarize:
    def test_noop_when_clean(self, community_graph):
        dyn = _dynamic(community_graph)
        # Fresh summaries may carry corrections from the summarizer
        # itself; a clean state means no corrections at all.
        if dyn.to_representation().num_corrections == 0:
            assert dyn.resummarize_local() == 0

    def test_preserves_graph(self, community_graph):
        dyn = _dynamic(community_graph)
        dyn.delete_edge(*next(iter(community_graph.edges())))
        before = dyn.to_graph()
        processed = dyn.resummarize_local()
        assert processed >= 1
        assert dyn.to_graph() == before
        verify_lossless(dyn.to_graph(), dyn.to_representation())

    def test_recompacts_structured_drift(self):
        graph = planted_partition(120, 6, 0.6, 0.0, seed=5)
        dyn = _dynamic(graph, rebuild_factor=None)
        for u in range(graph.n):
            for v in range(u + 1, graph.n):
                if u % 6 == v % 6 and not dyn.has_edge(u, v):
                    dyn.insert_edge(u, v)
        drifted = dyn.cost
        dyn.resummarize_local()
        assert dyn.cost < drifted

    def test_counts_as_rebuild(self, community_graph):
        dyn = _dynamic(community_graph)
        dyn.delete_edge(*next(iter(community_graph.edges())))
        dyn.resummarize_local()
        assert dyn.num_rebuilds == 1

    def test_targets_subset_only_touches_selected_region(self):
        graph = planted_partition(120, 6, 0.6, 0.0, seed=5)
        dyn = _dynamic(graph, rebuild_factor=None)
        for u in range(graph.n):
            for v in range(u + 1, graph.n):
                if u % 6 == v % 6 and not dyn.has_edge(u, v):
                    dyn.insert_edge(u, v)
        before = dyn.to_graph()
        dirty = dyn.dirty_supernodes()
        assert dirty
        subset = sorted(dirty)[: max(1, len(dirty) // 3)]
        processed = dyn.resummarize_local(targets=subset)
        assert 0 < processed <= len(subset)
        assert dyn.to_graph() == before
        verify_lossless(dyn.to_graph(), dyn.to_representation())

    def test_unprocessed_dirtiness_carries_over(self):
        graph = planted_partition(120, 6, 0.6, 0.0, seed=5)
        dyn = _dynamic(graph, rebuild_factor=None)
        for u in range(graph.n):
            for v in range(u + 1, graph.n):
                if u % 6 == v % 6 and not dyn.has_edge(u, v):
                    dyn.insert_edge(u, v)
        dirty = dyn.dirty_supernodes()
        subset = sorted(dirty)[: max(1, len(dirty) // 3)]
        skipped_dirt = sum(
            count for sid, count in dirty.items() if sid not in subset
        )
        dyn.resummarize_local(targets=subset)
        remaining = dyn.dirty_supernodes()
        # Dirt on the untargeted region survives the pass (remapped to
        # the rebuilt ids), so the next pass still knows where to look.
        assert sum(remaining.values()) == skipped_dirt

    def test_merge_budget_caps_work(self):
        from repro.resilience.guard import ResourceBudget

        graph = planted_partition(120, 6, 0.6, 0.0, seed=5)
        dyn = _dynamic(graph, rebuild_factor=None)
        for u in range(graph.n):
            for v in range(u + 1, graph.n):
                if u % 6 == v % 6 and not dyn.has_edge(u, v):
                    dyn.insert_edge(u, v)
        before = dyn.to_graph()
        budget = ResourceBudget(max_merges=3)
        budget.start()
        dyn.resummarize_local(budget=budget)
        budget.stop()
        assert dyn.to_graph() == before
        verify_lossless(dyn.to_graph(), dyn.to_representation())


class TestDirtinessTracking:
    def test_mutations_mark_touched_supernodes(self, community_graph):
        dyn = _dynamic(community_graph)
        assert dyn.dirty_supernodes() == {}
        u, v = next(iter(community_graph.edges()))
        dyn.delete_edge(u, v)
        dirty = dyn.dirty_supernodes()
        assert dirty
        assert all(count >= 1 for count in dirty.values())

    def test_relative_size_infinite_when_empty_but_costly(self):
        # Deleting every edge of a clique leaves the super-node's
        # self-loop plus one removal per pair: m == 0 with cost > 0.
        import itertools

        edges = list(itertools.combinations(range(4), 2))
        dyn = _dynamic(Graph(4, edges), rebuild_factor=None)
        for u, v in edges:
            dyn.delete_edge(u, v)
        assert dyn.m == 0
        assert dyn.cost > 0
        # Worse than any graph's trivial encoding — never 0.0, which
        # would read as "perfectly compact".
        assert dyn.relative_size == float("inf")
