"""End-to-end integration tests across the whole pipeline.

These tests exercise the package the way the benchmark harness and a
downstream user would: generate a workload, summarize it with the
paper's algorithms, verify losslessness, answer queries on the
summary, and check the headline comparative claims hold in shape.
"""

import numpy as np
import pytest

from repro import (
    GreedySummarizer,
    LDMESummarizer,
    MagsDMSummarizer,
    MagsSummarizer,
    SluggerSummarizer,
    SWeGSummarizer,
    verify_lossless,
)
from repro.graph import generators, load_dataset
from repro.queries import (
    SummaryNeighborIndex,
    pagerank_input_graph,
    pagerank_summary,
)


@pytest.fixture(scope="module")
def workload():
    """A structured medium workload shared by the module's tests."""
    return generators.templated_web(500, 25, 60, 8, 0.08, seed=13)


@pytest.fixture(scope="module")
def results(workload):
    T = 12
    return {
        "Mags": MagsSummarizer(iterations=T, seed=0).summarize(workload),
        "Mags-DM": MagsDMSummarizer(iterations=T, seed=0).summarize(workload),
        "SWeG": SWeGSummarizer(iterations=T, seed=0).summarize(workload),
        "LDME": LDMESummarizer(
            iterations=T, signature_length=2, seed=0
        ).summarize(workload),
        "Slugger": SluggerSummarizer(iterations=T, seed=0).summarize(
            workload
        ),
        "Greedy": GreedySummarizer().summarize(workload),
    }


class TestEndToEnd:
    def test_all_lossless(self, workload, results):
        for result in results.values():
            verify_lossless(workload, result.representation)

    def test_compactness_ordering(self, results):
        """The paper's Figure 4 shape: Greedy and Mags lead; the
        divide-and-merge family follows; everything beats trivial."""
        rel = {name: r.relative_size for name, r in results.items()}
        assert rel["Mags"] <= rel["SWeG"] + 0.02
        assert rel["Mags-DM"] <= rel["SWeG"] + 0.02
        assert rel["Greedy"] <= rel["LDME"]
        assert all(v < 1.0 for v in rel.values())

    def test_mags_close_to_greedy(self, results):
        """Headline claim: Mags within a whisker of Greedy."""
        assert results["Mags"].cost <= results["Greedy"].cost * 1.06

    def test_mags_dm_close_to_mags(self, results):
        """Headline claim: Mags-DM within ~2-3% of Mags."""
        assert results["Mags-DM"].cost <= results["Mags"].cost * 1.08

    def test_greedy_is_slowest(self, results):
        assert results["Greedy"].runtime_seconds >= max(
            results["Mags"].runtime_seconds,
            results["Mags-DM"].runtime_seconds,
        )

    def test_mags_dm_faster_than_mags(self, results):
        assert (
            results["Mags-DM"].runtime_seconds
            < results["Mags"].runtime_seconds
        )

    def test_queries_on_every_summary(self, workload, results):
        expected_pr = pagerank_input_graph(workload, 0.85, 8)
        for result in results.values():
            index = SummaryNeighborIndex(result.representation)
            for q in range(0, workload.n, 61):
                assert index.neighbors(q) == set(workload.neighbors(q))
            got = pagerank_summary(result.representation, 0.85, 8)
            np.testing.assert_allclose(got, expected_pr, rtol=1e-8)


class TestDatasetPipeline:
    @pytest.mark.parametrize("code", ["CA", "EN", "DB"])
    def test_small_dataset_roundtrip(self, code):
        graph = load_dataset(code)
        result = MagsDMSummarizer(iterations=8, seed=1).summarize(graph)
        verify_lossless(graph, result.representation)
        assert result.relative_size < 1.0

    def test_web_analog_compresses_hard(self):
        graph = load_dataset("CN")
        result = MagsDMSummarizer(iterations=15, seed=1).summarize(graph)
        # The paper's CNR-2000 lands at ~0.13 relative size.
        assert result.relative_size < 0.3

    def test_social_analog_compresses_mildly(self):
        graph = load_dataset("YT")
        result = MagsDMSummarizer(iterations=10, seed=1).summarize(graph)
        assert 0.4 < result.relative_size < 0.95


class TestSerializationRoundtrip:
    def test_summarize_save_reload_requery(self, tmp_path, workload):
        """Full lifecycle: summarize, persist the reconstruction, load
        it back, and confirm it is the same graph."""
        from repro.graph.io import load_graph, save_graph

        result = MagsSummarizer(iterations=8, seed=2).summarize(workload)
        reconstructed = result.representation.reconstruct()
        path = tmp_path / "roundtrip.txt"
        save_graph(path, reconstructed)
        assert load_graph(path) == workload
