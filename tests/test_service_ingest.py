"""The ingest op end to end: engine, protocol, server, client retries."""

from __future__ import annotations

import threading

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.dynamic.summary import DynamicGraphSummary
from repro.graph import generators
from repro.resilience.faults import FaultInjector, FaultPlan, use_injector
from repro.resilience.retry import RetryPolicy
from repro.service import (
    MutableQueryEngine,
    QueryEngine,
    ServiceError,
    SummaryQueryServer,
    SummaryServiceClient,
)
from repro.service.engine import QueryError
from repro.service.protocol import (
    MAX_INGEST_MUTATIONS,
    ProtocolError,
    validate_request,
    validate_response,
)


@pytest.fixture(scope="module")
def rep():
    graph = generators.planted_partition(120, 6, 0.65, 0.03, seed=5)
    return (
        MagsDMSummarizer(iterations=8, seed=1)
        .summarize(graph)
        .representation
    )


def _engine(rep, **kwargs):
    return MutableQueryEngine(
        DynamicGraphSummary.from_representation(rep), **kwargs
    )


def _free_edges(rep, count):
    edges = set(rep.reconstruct_edges())
    out = []
    for u in range(rep.n):
        for v in range(u + 1, rep.n):
            if (u, v) not in edges:
                out.append((u, v))
                if len(out) == count:
                    return out
    raise AssertionError("not enough free pairs")


# ---------------------------------------------------------------------------
# Engine semantics
# ---------------------------------------------------------------------------
class TestMutableEngine:
    def test_ingest_applies_and_bumps_epoch(self, rep):
        engine = _engine(rep)
        (u, v), = _free_edges(rep, 1)
        assert v not in engine.neighbors(u)
        result = engine.ingest("s", 0, [["+", u, v]])
        assert result == {"applied": 1, "lsn": 1}
        assert engine.epoch == 1
        assert v in engine.neighbors(u)
        assert u in engine.neighbors(v)
        engine.ingest("s", 1, [["-", u, v]])
        assert engine.epoch == 2
        assert v not in engine.neighbors(u)

    def test_responses_echo_epoch(self, rep):
        engine = _engine(rep)
        response = engine.query({"id": 1, "op": "degree", "node": 0})
        assert response["epoch"] == 0
        (u, v), = _free_edges(rep, 1)
        engine.query(
            {"id": 2, "op": "ingest", "stream": "s", "seq": 0,
             "mutations": [["+", u, v]]}
        )
        response = engine.query({"id": 3, "op": "degree", "node": 0})
        assert response["epoch"] == 1

    def test_batch_responses_echo_epoch(self, rep):
        engine = _engine(rep)
        responses = engine.query_many(
            [{"id": 1, "op": "degree", "node": 0},
             {"id": 2, "op": "neighbors", "node": 1}]
        )
        assert all(r["epoch"] == 0 for r in responses)

    def test_duplicate_seq_deduped(self, rep):
        engine = _engine(rep)
        (u, v), = _free_edges(rep, 1)
        first = engine.ingest("s", 4, [["+", u, v]])
        again = engine.ingest("s", 4, [["+", u, v]])
        assert again == {**first, "duplicate": True}
        assert engine.epoch == 1  # applied exactly once

    def test_seq_reuse_with_different_batch_rejected(self, rep):
        """Dedup identity is sequence *and* content: the last seq
        replayed with different mutations must surface as an error,
        not be silently swallowed by the dedup cache."""
        engine = _engine(rep)
        (u, v), (x, y) = _free_edges(rep, 2)
        engine.ingest("s", 0, [["+", u, v]])
        with pytest.raises(QueryError, match="reused with different"):
            engine.ingest("s", 0, [["+", x, y]])
        assert y not in engine.neighbors(x)
        assert engine.epoch == 1
        # The true retry still dedups.
        again = engine.ingest("s", 0, [["+", u, v]])
        assert again.get("duplicate") is True

    def test_dry_run_validates_without_applying(self, rep):
        engine = _engine(rep)
        (u, v), = _free_edges(rep, 1)
        assert engine.ingest(
            "s", 0, [["+", u, v]], dry_run=True
        ) == {"validated": 1}
        # Nothing logged, applied, or remembered.
        assert engine.epoch == 0
        assert v not in engine.neighbors(u)
        result = engine.ingest("s", 0, [["+", u, v]])
        assert result == {"applied": 1, "lsn": 1}
        assert result.get("duplicate") is None
        # An inapplicable dry run is the same structured rejection as
        # a real one.
        with pytest.raises(QueryError, match="already exists"):
            engine.ingest("s", 1, [["+", u, v]], dry_run=True)
        # A dry run of the last acknowledged (seq, batch) answers from
        # the dedup cache — the prepare round of an already-applied
        # sub-batch reports acceptance, not a validation failure.
        again = engine.ingest("s", 0, [["+", u, v]], dry_run=True)
        assert again.get("duplicate") is True
        assert engine.epoch == 1

    def test_rewound_seq_rejected(self, rep):
        engine = _engine(rep)
        (u, v), (x, y) = _free_edges(rep, 2)
        engine.ingest("s", 7, [["+", u, v]])
        with pytest.raises(QueryError, match="sequence rewound"):
            engine.ingest("s", 3, [["+", x, y]])

    def test_inapplicable_batch_is_a_noop(self, rep):
        engine = _engine(rep)
        (u, v), (x, y) = _free_edges(rep, 2)
        # Second mutation re-inserts an edge the batch itself created.
        with pytest.raises(QueryError, match="already exists"):
            engine.ingest("s", 0, [["+", u, v], ["+", u, v]])
        assert engine.epoch == 0
        assert v not in engine.neighbors(u)
        # Delete of a never-present edge, same story.
        with pytest.raises(QueryError, match="does not exist"):
            engine.ingest("s", 0, [["-", x, y]])
        assert engine.epoch == 0

    @pytest.mark.parametrize(
        "stream,seq,mutations,message",
        [
            (None, 0, [["+", 0, 1]], "'stream'"),
            ("s", -1, [["+", 0, 1]], "'seq'"),
            ("s", True, [["+", 0, 1]], "'seq'"),
            ("s", 0, [], "non-empty"),
            ("s", 0, [["+", 0]], 'must be \\["\\+"'),
            ("s", 0, [["*", 0, 1]], "unknown sign"),
            ("s", 0, [["+", 0, "1"]], "integers"),
            ("s", 0, [["+", 0, 10**9]], "out of range"),
            ("s", 0, [["+", 3, 3]], "self-loop"),
        ],
    )
    def test_malformed_batches_rejected(
        self, rep, stream, seq, mutations, message
    ):
        engine = _engine(rep)
        with pytest.raises(QueryError, match=message):
            engine.ingest(stream, seq, mutations)
        assert engine.epoch == 0

    def test_oversized_batch_rejected(self, rep):
        engine = _engine(rep)
        batch = [["+", 0, 1]] * (MAX_INGEST_MUTATIONS + 1)
        with pytest.raises(QueryError, match="exceeds the cap"):
            engine.ingest("s", 0, batch)

    def test_replaying_parks_ingest_and_degrades_reads(self, rep):
        engine = _engine(rep)
        engine.replaying = True
        with pytest.raises(QueryError, match="replay in progress"):
            engine.ingest("s", 0, [["+", 0, 1]])
        response = engine.query({"id": 1, "op": "degree", "node": 0})
        assert response["degraded"] is True
        engine.replaying = False
        response = engine.query({"id": 2, "op": "degree", "node": 0})
        assert "degraded" not in response

    def test_inflight_cap_sheds_with_overloaded(self, rep):
        engine = _engine(rep, max_inflight=1)
        engine._inflight = 1  # simulate a parked admission slot
        with pytest.raises(QueryError, match="queue full") as excinfo:
            engine.ingest("s", 0, [["+", 0, 1]])
        assert excinfo.value.kind == "overloaded"
        engine._inflight = 0

    def test_budget_parks_ingest(self, rep):
        class TrippedBudget:
            def exhausted(self):
                return "memory_budget"

        engine = _engine(rep, budget=TrippedBudget())
        with pytest.raises(QueryError, match="budget exhausted"):
            engine.ingest("s", 0, [["+", 0, 1]])

    def test_pagerank_invalidated_by_commit(self, rep):
        engine = _engine(rep)
        (u, v), = _free_edges(rep, 1)
        before = engine.pagerank_score(u)
        for i in range(40):
            engine.ingest("s", i, [["+", u, v] if i % 2 == 0 else
                                   ["-", u, v]])
        engine.ingest("s", 40, [["+", u, v]])
        after = engine.pagerank_score(u)
        assert after != before

    def test_read_only_engine_rejects_ingest(self, rep):
        engine = QueryEngine(rep)
        with pytest.raises(QueryError, match="not enabled"):
            engine.query(
                {"id": 1, "op": "ingest", "stream": "s", "seq": 0,
                 "mutations": [["+", 0, 1]]}
            )

    def test_ingest_equivalent_to_from_scratch(self, rep):
        """The paper-level invariant: a summary mutated online equals
        a summary whose graph was edited before summarization."""
        engine = _engine(rep)
        pairs = _free_edges(rep, 3)
        for i, (u, v) in enumerate(pairs):
            engine.ingest("s", i, [["+", u, v]])
        graph = engine._dynamic.to_graph()
        expected = set(rep.reconstruct_edges()) | set(pairs)
        assert set(graph.edges()) == expected


# ---------------------------------------------------------------------------
# Protocol validation
# ---------------------------------------------------------------------------
class TestIngestProtocol:
    def _request(self, **overrides):
        request = {
            "id": 1, "op": "ingest", "stream": "s", "seq": 0,
            "mutations": [["+", 1, 2]],
        }
        request.update(overrides)
        return request

    def test_valid_request_passes(self):
        validate_request(self._request())

    @pytest.mark.parametrize(
        "overrides",
        [
            {"stream": 42},
            {"stream": ""},
            {"stream": "x" * 200},
            {"seq": "0"},
            {"seq": -1},
            {"seq": True},
            {"mutations": []},
            {"mutations": "nope"},
            {"mutations": [["+", 1]]},
            {"mutations": [["+", 1, -2]]},
            {"mutations": [["%", 1, 2]]},
            {"mutations": [["+", 1.5, 2]]},
            {"dry_run": 1},
            {"dry_run": "yes"},
            {"extra": 1},
        ],
    )
    def test_malformed_requests_rejected(self, overrides):
        with pytest.raises(ProtocolError):
            validate_request(self._request(**overrides))

    def test_dry_run_field_accepted(self):
        validate_request(self._request(dry_run=True))
        validate_request(self._request(dry_run=False))

    def test_oversized_batch_rejected_at_the_boundary(self):
        batch = [["+", 1, 2]] * (MAX_INGEST_MUTATIONS + 1)
        with pytest.raises(ProtocolError, match="cap"):
            validate_request(self._request(mutations=batch))

    def test_response_epoch_type_checked(self):
        good = {"id": 1, "ok": True, "op": "ingest",
                "result": {"applied": 1, "lsn": 1}, "epoch": 3}
        assert validate_response(good) == good
        with pytest.raises(ProtocolError, match="epoch"):
            validate_response({**good, "epoch": "3"})
        with pytest.raises(ProtocolError, match="epoch"):
            validate_response({**good, "epoch": -1})


# ---------------------------------------------------------------------------
# Server + client end to end
# ---------------------------------------------------------------------------
class TestIngestOverTheWire:
    @pytest.fixture
    def server(self, rep):
        with SummaryQueryServer(
            _engine(rep), workers=4, request_timeout=5.0
        ) as srv:
            yield srv

    def test_ingest_roundtrip_with_epoch(self, rep, server):
        host, port = server.address
        with SummaryServiceClient(host, port) as client:
            (u, v), = _free_edges(rep, 1)
            result = client.ingest([["+", u, v]])
            assert result["applied"] == 1
            assert v in client.neighbors(u)
            raw = client.request_raw(
                {"id": 99, "op": "degree", "node": u}
            )
            assert raw["epoch"] == 1

    def test_error_responses_carry_epoch(self, rep, server):
        host, port = server.address
        with SummaryServiceClient(host, port) as client:
            (u, v), = _free_edges(rep, 1)
            client.ingest([["+", u, v]])
            raw = client.request_raw(
                {"id": 100, "op": "degree", "node": 10**9}
            )
            assert raw["ok"] is False
            assert raw["epoch"] == 1

    def test_client_auto_seq_consumed_even_on_rejection(
        self, rep, server
    ):
        """A failed ingest burns its sequence number: after a cluster
        partial failure the number may already be recorded on some
        server, and reusing it for *different* mutations would let
        that server dedup — silently drop — the new batch.  Servers
        accept sequence gaps, so burning is always safe."""
        host, port = server.address
        with SummaryServiceClient(host, port) as client:
            (u, v), = _free_edges(rep, 1)
            client.ingest([["+", u, v]])
            assert client._ingest_seq == 1
            with pytest.raises(ServiceError, match="already exists"):
                client.ingest([["+", u, v]])
            # The rejected batch consumed seq 1; the next batch lands
            # at seq 2 and the server accepts the gap.
            assert client._ingest_seq == 2
            result = client.ingest([["-", u, v]])
            assert result["applied"] == 1
            assert client._ingest_seq == 3

    def test_lost_ack_retry_is_deduplicated(self, rep, server):
        """The satellite-4 contract: a retry after a lost *response*
        resends the original sequence number, so the server applies
        once and answers ``duplicate: true``."""
        host, port = server.address
        client = SummaryServiceClient(
            host, port, timeout=10.0,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay=0.001, max_delay=0.01
            ),
        )
        (u, v), = _free_edges(rep, 1)
        injector = FaultInjector(
            # The request is *sent* (and applied server-side); the
            # acknowledgement never arrives.
            FaultPlan().drop("client:recv", after=0, times=1)
        )
        with use_injector(injector):
            result = client.ingest([["+", u, v]])
        assert injector.fired_count("client:recv") == 1
        assert result["applied"] == 1
        assert result.get("duplicate") is True  # second delivery deduped
        assert v in client.neighbors(u)
        # Applied exactly once: deleting it once succeeds, twice fails.
        client.ingest([["-", u, v]])
        with pytest.raises(ServiceError, match="does not exist"):
            client.ingest([["-", u, v]])
        client.close()

    def test_shutdown_never_retried_ingest_needs_identity(self):
        from repro.service.client import _retry_safe

        assert _retry_safe("neighbors", {"node": 1}) is True
        assert _retry_safe("shutdown", {}) is False
        assert _retry_safe(
            "ingest", {"stream": "s", "seq": 0, "mutations": []}
        ) is True
        assert _retry_safe("ingest", {"seq": 0}) is False
        assert _retry_safe("ingest", {"stream": "s"}) is False

    def test_concurrent_ingest_streams_all_land(self, rep, server):
        host, port = server.address
        pairs = _free_edges(rep, 8)
        errors = []

        def worker(pair):
            try:
                with SummaryServiceClient(host, port) as client:
                    client.ingest([["+", pair[0], pair[1]]])
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(pair,))
            for pair in pairs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        with SummaryServiceClient(host, port) as client:
            for u, v in pairs:
                assert v in client.neighbors(u)
            raw = client.request_raw({"id": 1, "op": "ping"})
            assert raw["epoch"] == len(pairs)
