"""Tests for the cluster topology spec and its JSON round trip."""

import json

import pytest

from repro.cluster.topology import (
    ClusterSpec,
    InstanceSpec,
    TopologyError,
    default_spec,
    load_topology,
    save_topology,
    spec_from_dict,
)
from repro.distributed.partitioning import shard_for_node


def make_spec(**overrides):
    base = dict(
        shards=2,
        replicas=2,
        seed=0,
        router_host="127.0.0.1",
        router_port=7400,
        instances=[
            InstanceSpec(s, r, "127.0.0.1", 7401 + s * 2 + r)
            for s in range(2)
            for r in range(2)
        ],
    )
    base.update(overrides)
    return ClusterSpec(**base)


class TestSpecValidation:
    def test_valid_spec_builds(self):
        spec = make_spec()
        assert spec.shards == 2
        assert len(spec.instances) == 4

    def test_missing_replica_rejected(self):
        with pytest.raises(TopologyError, match="missing"):
            make_spec(
                instances=[
                    InstanceSpec(0, 0, "127.0.0.1", 7401),
                    InstanceSpec(0, 1, "127.0.0.1", 7402),
                    InstanceSpec(1, 0, "127.0.0.1", 7403),
                ]
            )

    def test_duplicate_pair_rejected(self):
        with pytest.raises(TopologyError, match="duplicate"):
            make_spec(
                instances=[
                    InstanceSpec(0, 0, "127.0.0.1", 7401),
                    InstanceSpec(0, 0, "127.0.0.1", 7402),
                    InstanceSpec(0, 1, "127.0.0.1", 7403),
                    InstanceSpec(1, 0, "127.0.0.1", 7404),
                    InstanceSpec(1, 1, "127.0.0.1", 7405),
                ]
            )

    def test_colliding_addresses_rejected(self):
        with pytest.raises(TopologyError, match="distinct"):
            make_spec(router_port=7401)

    def test_bad_counts_rejected(self):
        with pytest.raises(TopologyError):
            default_spec(0, 1)
        with pytest.raises(TopologyError):
            default_spec(1, 0)

    def test_artifact_for_unknown_shard_rejected(self):
        with pytest.raises(TopologyError, match="unknown shard"):
            make_spec(artifacts={5: "shard-5.summary.txt.gz"})

    def test_instance_label_and_address(self):
        inst = InstanceSpec(1, 0, "127.0.0.1", 7403)
        assert inst.label == "shard1/r0"
        assert inst.address == ("127.0.0.1", 7403)


class TestOwnerMap:
    def test_owner_is_shard_for_node(self):
        spec = make_spec(seed=7)
        for node in range(200):
            assert spec.owner(node) == shard_for_node(node, 2, 7)

    def test_instances_for_sorted_by_replica(self):
        spec = make_spec()
        replicas = spec.instances_for(1)
        assert [i.replica for i in replicas] == [0, 1]
        assert all(i.shard == 1 for i in replicas)


class TestSerialization:
    def test_round_trip(self, tmp_path):
        spec = make_spec(
            artifacts={0: "shard-0.summary.txt.gz", 1: "s1.txt"},
            n=1200,
            breaker_threshold=3,
            breaker_reset_s=1.5,
        )
        path = tmp_path / "topology.json"
        save_topology(path, spec)
        loaded = load_topology(path)
        assert loaded.shards == spec.shards
        assert loaded.replicas == spec.replicas
        assert loaded.seed == spec.seed
        assert loaded.n == 1200
        assert loaded.breaker_threshold == 3
        assert loaded.breaker_reset_s == 1.5
        assert loaded.instances == spec.instances
        assert loaded.artifacts == spec.artifacts
        assert loaded.base_dir == tmp_path.resolve()

    def test_relative_artifacts_resolve_against_file_dir(self, tmp_path):
        spec = make_spec(artifacts={0: "a.txt", 1: "/abs/b.txt"})
        path = tmp_path / "topology.json"
        save_topology(path, spec)
        loaded = load_topology(path)
        assert loaded.artifact_path(0) == tmp_path.resolve() / "a.txt"
        assert str(loaded.artifact_path(1)) == "/abs/b.txt"

    def test_missing_artifact_raises(self):
        spec = make_spec()
        with pytest.raises(TopologyError, match="no artifact"):
            spec.artifact_path(0)

    def test_template_spec_omits_n(self, tmp_path):
        spec = default_spec(2, 1)
        path = tmp_path / "topology.json"
        save_topology(path, spec)
        assert load_topology(path).n is None

    def test_unsupported_version_rejected(self, tmp_path):
        spec = make_spec()
        data = spec.to_dict()
        data["version"] = 99
        path = tmp_path / "topology.json"
        path.write_text(json.dumps(data))
        with pytest.raises(TopologyError, match="version"):
            load_topology(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "topology.json"
        path.write_text("{nope")
        with pytest.raises(TopologyError, match="invalid JSON"):
            load_topology(path)

    @pytest.mark.parametrize("field", ["shards", "router", "instances"])
    def test_missing_required_field_rejected(self, field):
        data = make_spec().to_dict()
        del data[field]
        with pytest.raises(TopologyError, match=field):
            spec_from_dict(data)

    def test_bool_fields_rejected(self):
        data = make_spec().to_dict()
        data["shards"] = True
        with pytest.raises(TopologyError, match="shards"):
            spec_from_dict(data)


class TestDefaultSpec:
    def test_ports_are_shard_major_after_router(self):
        spec = default_spec(2, 2, base_port=7400)
        assert spec.router_address == ("127.0.0.1", 7400)
        ports = {
            i.label: i.port
            for i in spec.instances
        }
        assert ports == {
            "shard0/r0": 7401,
            "shard0/r1": 7402,
            "shard1/r0": 7403,
            "shard1/r1": 7404,
        }
