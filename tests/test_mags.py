"""Tests for Mags (Section 3): candidate generation and greedy merge."""

import pytest

from repro.algorithms.greedy import GreedySummarizer
from repro.algorithms.mags import CandidatePairs, MagsSummarizer
from repro.core.supernodes import SuperNodePartition
from repro.core.verify import verify_lossless
from repro.graph.generators import caveman, planted_partition
from repro.graph.graph import Graph


class TestCandidatePairs:
    def test_add_and_lookup_both_directions(self):
        cp = CandidatePairs()
        cp.add(1, 2, 0.4)
        assert cp.saving(1, 2) == 0.4
        assert cp.saving(2, 1) == 0.4
        assert len(cp) == 1

    def test_partners_index(self):
        cp = CandidatePairs()
        cp.add(1, 2, 0.4)
        cp.add(1, 3, 0.2)
        assert set(cp.partners(1)) == {2, 3}
        assert set(cp.partners(2)) == {1}

    def test_discard(self):
        cp = CandidatePairs()
        cp.add(1, 2, 0.4)
        cp.discard(2, 1)
        assert cp.saving(1, 2) is None
        assert len(cp) == 0

    def test_discard_absent_is_noop(self):
        cp = CandidatePairs()
        cp.discard(5, 6)

    def test_replace_node_rekeys_pairs(self):
        cp = CandidatePairs()
        cp.add(1, 2, 0.4)
        cp.add(1, 3, 0.2)
        moved = cp.replace_node(1, 9)
        assert sorted(moved) == [2, 3]
        assert cp.saving(9, 2) == 0.4
        assert cp.saving(9, 3) == 0.2
        assert cp.saving(1, 2) is None

    def test_replace_node_drops_pair_with_survivor(self):
        cp = CandidatePairs()
        cp.add(1, 9, 0.4)
        moved = cp.replace_node(1, 9)
        assert moved == []
        assert cp.saving(9, 9) is None

    def test_replace_keeps_existing_survivor_pair(self):
        cp = CandidatePairs()
        cp.add(1, 2, 0.4)
        cp.add(9, 2, 0.3)
        cp.replace_node(1, 9)
        # Existing (9,2) saving wins over the moved stale one.
        assert cp.saving(9, 2) == 0.3

    def test_pairs_listing(self):
        cp = CandidatePairs()
        cp.add(3, 1, 0.1)
        cp.add(2, 4, 0.2)
        assert sorted(cp.pairs()) == [(1, 3), (2, 4)]


class TestParameterDefaults:
    def test_k_default_follows_paper(self):
        mags = MagsSummarizer()
        dense = planted_partition(100, 5, 0.8, 0.05, seed=1)
        assert mags._resolved_k(dense) == min(int(5 * dense.avg_degree), 30)

    def test_h_default_follows_paper(self):
        mags = MagsSummarizer()
        sparse = Graph(10, [(i, i + 1) for i in range(9)])
        assert mags._resolved_h(sparse) == min(int(10 * sparse.avg_degree), 50)

    def test_explicit_overrides(self):
        mags = MagsSummarizer(k=7, h=13)
        g = Graph(4, [(0, 1)])
        assert mags._resolved_k(g) == 7
        assert mags._resolved_h(g) == 13

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            MagsSummarizer(iterations=0)
        with pytest.raises(ValueError):
            MagsSummarizer(b=0)
        with pytest.raises(ValueError):
            MagsSummarizer(candidate_method="magic")
        with pytest.raises(ValueError):
            MagsSummarizer(workers=0)


class TestMags:
    def test_clique_collapses(self, clique_graph):
        result = MagsSummarizer(iterations=5).summarize(clique_graph)
        assert result.representation.num_supernodes == 1

    def test_twins_merged(self, twin_graph):
        result = MagsSummarizer(iterations=5).summarize(twin_graph)
        rep = result.representation
        merged = sum(
            rep.supernode_of(2 * i) == rep.supernode_of(2 * i + 1)
            for i in range(4)
        )
        assert merged == 4

    def test_matches_greedy_on_structured_graph(self):
        """The paper's headline: < 0.1% average difference to Greedy.
        On a small structured graph the gap should be tiny."""
        g = planted_partition(120, 8, 0.75, 0.02, seed=5)
        greedy = GreedySummarizer().summarize(g)
        mags = MagsSummarizer(iterations=30).summarize(g)
        assert mags.cost <= greedy.cost * 1.05

    def test_naive_candidate_variant(self):
        g = caveman(4, 5, seed=2)
        fast = MagsSummarizer(iterations=10).summarize(g)
        naive = MagsSummarizer(
            iterations=10, candidate_method="naive"
        ).summarize(g)
        verify_lossless(g, naive.representation)
        # Figure 8: the two variants have near-identical compactness.
        assert naive.cost <= fast.cost * 1.1 + 2
        assert fast.cost <= naive.cost * 1.1 + 2

    def test_more_iterations_never_hurt_much(self):
        g = planted_partition(100, 10, 0.7, 0.03, seed=6)
        few = MagsSummarizer(iterations=5).summarize(g)
        many = MagsSummarizer(iterations=40).summarize(g)
        assert many.cost <= few.cost + 2

    def test_parallel_workers_lossless(self, community_graph):
        result = MagsSummarizer(iterations=8, workers=4).summarize(
            community_graph
        )
        verify_lossless(community_graph, result.representation)

    def test_phases_recorded(self, twin_graph):
        result = MagsSummarizer(iterations=3).summarize(twin_graph)
        assert {"candidate_generation", "greedy_merge", "output"} <= set(
            result.phase_seconds
        )

    def test_merge_stats_collected(self, twin_graph):
        mags = MagsSummarizer(iterations=4)
        result = mags.summarize(twin_graph)
        assert len(mags.last_iteration_merges) == 4
        assert sum(map(len, mags.last_iteration_merges)) == result.num_merges

    def test_isolated_nodes_survive(self):
        g = Graph(6, [(0, 1), (0, 2), (1, 2)])
        result = MagsSummarizer(iterations=5).summarize(g)
        verify_lossless(g, result.representation)
        rep = result.representation
        assert all(
            node in rep.node_to_supernode for node in range(6)
        )

    def test_candidate_budget_respected(self):
        g = planted_partition(80, 8, 0.7, 0.05, seed=2)
        mags = MagsSummarizer(iterations=1, k=3)
        pairs = mags._minhash_candidates(g)
        per_node: dict[int, int] = {}
        for u, v in pairs:
            per_node[u] = per_node.get(u, 0) + 1
            per_node[v] = per_node.get(v, 0) + 1
        # Each node generates at most k pairs itself; it can also be
        # chosen by others, so the global bound is k*n total pairs.
        assert len(pairs) <= 3 * g.n


class TestBatchParallelMerge:
    def test_lossless_and_close_to_serial(self, community_graph):
        serial = MagsSummarizer(iterations=10, seed=0).summarize(
            community_graph
        )
        parallel = MagsSummarizer(
            iterations=10, seed=0, workers=4
        ).summarize(community_graph)
        verify_lossless(community_graph, parallel.representation)
        # Batch mode relaxes within-iteration order only; compactness
        # must stay in the same neighborhood.
        assert parallel.cost <= serial.cost * 1.1 + 2

    def test_merge_stats_still_collected(self, twin_graph):
        mags = MagsSummarizer(iterations=4, seed=0, workers=3)
        result = mags.summarize(twin_graph)
        assert sum(map(len, mags.last_iteration_merges)) == result.num_merges

    def test_twins_merged_in_batch_mode(self, twin_graph):
        result = MagsSummarizer(
            iterations=6, seed=0, workers=3
        ).summarize(twin_graph)
        rep = result.representation
        merged = sum(
            rep.supernode_of(2 * i) == rep.supernode_of(2 * i + 1)
            for i in range(4)
        )
        assert merged == 4


class TestRekeyAfterMerge:
    """Regression tests for the stale-saving re-key bug.

    ``CandidatePairs.replace_node`` seeds moved pairs with the dead
    root's old saving — a value describing a super-node that no longer
    exists.  ``_rekey_after_merge`` must overwrite it (table *and*
    heap) with the saving of the actual surviving super-node.
    """

    @staticmethod
    def _partition_and_candidates():
        # Two dense communities sharing a bridge: merging inside one
        # community changes the savings of pairs that straddle it.
        g = planted_partition(24, 3, 0.9, 0.1, seed=21)
        partition = SuperNodePartition(g)
        candidates = CandidatePairs()
        for u in sorted(partition.roots()):
            for v in sorted(partition.weights(u)):
                if u < v:
                    candidates.add(u, v, partition.saving(u, v))
        return partition, candidates

    def test_heap_entries_match_authoritative_savings(self):
        partition, candidates = self._partition_and_candidates()
        heap: list[tuple[float, int, int]] = []
        u, v = next(
            (u, v) for (u, v) in candidates.pairs()
            if len(candidates.partners(u)) > 1
            and len(candidates.partners(v)) > 1
        )
        survivor = partition.merge(u, v)
        dead = v if survivor == u else u
        moved = MagsSummarizer._rekey_after_merge(
            partition, candidates, heap, survivor, dead
        )
        assert moved  # the merge must actually have re-keyed pairs
        for neg_s, a, b in heap:
            assert a == survivor
            assert candidates.saving(a, b) == -neg_s
            assert partition.saving(a, b) == -neg_s

    def test_stale_placeholder_is_overwritten(self):
        partition, candidates = self._partition_and_candidates()
        heap: list[tuple[float, int, int]] = []
        # Find a merge after which some moved pair's fresh saving
        # differs from the placeholder replace_node would seed — the
        # configuration in which the old code corrupted the heap order.
        for u, v in candidates.pairs():
            partners = set(candidates.partners(u)) | set(
                candidates.partners(v)
            )
            partners -= {u, v}
            if not partners:
                continue
            stale = {
                p: candidates.saving(u, p)
                if candidates.saving(u, p) is not None
                else candidates.saving(v, p)
                for p in partners
            }
            survivor = partition.merge(u, v)
            dead = v if survivor == u else u
            MagsSummarizer._rekey_after_merge(
                partition, candidates, heap, survivor, dead
            )
            changed = [
                p
                for p in partners
                if p in candidates.partners(survivor)
                and candidates.saving(survivor, p) != stale[p]
            ]
            assert changed, "merge did not change any saving; bad fixture"
            for p in changed:
                assert candidates.saving(survivor, p) == partition.saving(
                    survivor, p
                )
            return
        pytest.fail("no mergeable pair with outside partners found")
