"""Tests for the write-ahead log: framing, rotation, torn tails."""

from __future__ import annotations

import pytest

from repro.durability.wal import (
    WalError,
    WalRecord,
    WriteAheadLog,
    encode_record,
)
from repro.obs.metrics import MetricsRegistry


def _mutations(*pairs):
    return [("+", u, v) for u, v in pairs]


class TestFraming:
    def test_roundtrip_through_disk(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            lsn1 = wal.append("s", 0, [("+", 1, 2), ("-", 3, 4)])
            lsn2 = wal.append("t", 7, [("+", 0, 5)])
            assert (lsn1, lsn2) == (1, 2)
            records = wal.records()
        assert [r.lsn for r in records] == [1, 2]
        assert records[0].stream == "s"
        assert records[0].seq == 0
        assert records[0].mutations == (("+", 1, 2), ("-", 3, 4))
        assert records[1] == WalRecord(
            lsn=2, stream="t", seq=7, mutations=(("+", 0, 5),)
        )

    def test_lsn_continues_across_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            wal.append("s", 0, _mutations((1, 2)))
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            assert wal.last_lsn == 1
            assert wal.append("s", 1, _mutations((2, 3))) == 2

    def test_explicit_lsn_must_advance(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            wal.append("s", 0, _mutations((1, 2)), lsn=5)
            with pytest.raises(WalError, match="not past"):
                wal.append("s", 1, _mutations((2, 3)), lsn=5)
            assert wal.append("s", 1, _mutations((2, 3))) == 6

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append("s", 0, _mutations((1, 2)))

    def test_records_after_lsn_cursor(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            for i in range(5):
                wal.append("s", i, _mutations((i, i + 1)))
            tail = wal.records(after_lsn=3)
        assert [r.lsn for r in tail] == [4, 5]

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WriteAheadLog(tmp_path, fsync="sometimes")


class TestRotation:
    def test_segments_rotate_and_truncate(self, tmp_path):
        frame = len(encode_record(
            WalRecord(lsn=1, stream="s", seq=0, mutations=(("+", 1, 2),))
        ))
        with WriteAheadLog(
            tmp_path, fsync="never", segment_bytes=frame * 2
        ) as wal:
            for i in range(6):
                wal.append("s", i, _mutations((1, 2)))
            segments = sorted(p.name for p in tmp_path.glob("wal-*.log"))
            assert len(segments) == 3
            # Checkpoint at lsn=4: the first two segments (lsns 1-4)
            # are redundant; the active one stays.
            assert wal.truncate_through(4) == 2
            assert [r.lsn for r in wal.records(after_lsn=4)] == [5, 6]
            # New appends continue seamlessly after compaction.
            assert wal.append("s", 6, _mutations((1, 2))) == 7

    def test_active_segment_never_truncated(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            wal.append("s", 0, _mutations((1, 2)))
            assert wal.truncate_through(10) == 0
            assert wal.records() != []

    def test_directory_fsynced_on_create_rotate_truncate(
        self, tmp_path, monkeypatch
    ):
        """Segment create/unlink must be followed by an fsync of the
        WAL directory — a file fsync alone does not persist the parent
        directory entry, so a rotated segment could vanish wholesale
        on power failure."""
        calls = []
        monkeypatch.setattr(
            WriteAheadLog,
            "_fsync_directory",
            lambda self: calls.append("dir"),
        )
        frame = len(encode_record(
            WalRecord(lsn=1, stream="s", seq=0, mutations=(("+", 1, 2),))
        ))
        with WriteAheadLog(
            tmp_path, fsync="never", segment_bytes=frame * 2
        ) as wal:
            assert calls == ["dir"]  # open created wal-00000000.log
            for i in range(3):
                wal.append("s", i, _mutations((1, 2)))
            assert calls == ["dir"] * 2  # one rotation
            assert wal.truncate_through(2) == 1
            assert calls == ["dir"] * 3  # one segment unlinked
            # A no-op truncation syncs nothing.
            assert wal.truncate_through(2) == 0
            assert calls == ["dir"] * 3


class TestTornTail:
    def _write_three(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            for i in range(3):
                wal.append("s", i, _mutations((i, i + 1)))

    def test_garbage_tail_repaired_on_open(self, tmp_path):
        self._write_three(tmp_path)
        segment = next(tmp_path.glob("wal-*.log"))
        clean_size = segment.stat().st_size
        with segment.open("ab") as handle:
            handle.write(b"\xff\x13garbage")
        registry = MetricsRegistry()
        with WriteAheadLog(
            tmp_path, fsync="never", registry=registry
        ) as wal:
            assert wal.last_lsn == 3
            assert [r.lsn for r in wal.records()] == [1, 2, 3]
            # Appends land at a clean boundary after the repair.
            assert wal.append("s", 3, _mutations((7, 8))) == 4
        assert segment.stat().st_size > clean_size  # repaired + appended
        assert (
            registry.counter(
                "repro_wal_records_total", event="torn_dropped"
            ).value
            == 1
        )

    def test_truncated_record_dropped(self, tmp_path):
        self._write_three(tmp_path)
        segment = next(tmp_path.glob("wal-*.log"))
        data = segment.read_bytes()
        segment.write_bytes(data[:-3])  # tear the last record
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            assert wal.last_lsn == 2
            assert [r.lsn for r in wal.records()] == [1, 2]

    def test_corrupt_mid_segment_drops_later_segments(self, tmp_path):
        frame = len(encode_record(
            WalRecord(lsn=1, stream="s", seq=0, mutations=(("+", 0, 1),))
        ))
        with WriteAheadLog(
            tmp_path, fsync="never", segment_bytes=frame * 2
        ) as wal:
            for i in range(6):
                wal.append("s", i, _mutations((0, 1)))
        segments = sorted(tmp_path.glob("wal-*.log"))
        assert len(segments) >= 2
        # Flip a byte inside the FIRST segment's second record: every
        # later segment is no longer trustworthy and must go.
        data = bytearray(segments[0].read_bytes())
        data[frame + 5] ^= 0xFF
        segments[0].write_bytes(bytes(data))
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            assert wal.last_lsn == 1
            assert [r.lsn for r in wal.records()] == [1]
        assert len(list(tmp_path.glob("wal-*.log"))) == 1


class TestFsyncPolicies:
    @pytest.mark.parametrize("policy", ["always", "interval", "never"])
    def test_all_policies_durable_after_close(self, tmp_path, policy):
        directory = tmp_path / policy
        with WriteAheadLog(
            directory, fsync=policy, fsync_interval=3
        ) as wal:
            for i in range(7):
                wal.append("s", i, _mutations((i, i + 1)))
        with WriteAheadLog(directory, fsync="never") as wal:
            assert wal.last_lsn == 7

    def test_always_policy_records_fsync_latency(self, tmp_path):
        registry = MetricsRegistry()
        with WriteAheadLog(
            tmp_path, fsync="always", registry=registry
        ) as wal:
            wal.append("s", 0, _mutations((1, 2)))
        assert registry.histogram("repro_wal_fsync_seconds").count >= 1


class TestStreamingReplay:
    def test_iter_records_streams_lazily(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            for i in range(5):
                wal.append("s", i, _mutations((i, i + 1)))
            stream = wal.iter_records(after_lsn=2)
            assert next(stream).lsn == 3
            # Appends after the cursor position still surface: the
            # generator re-reads segments as it goes.
            assert [r.lsn for r in stream] == [4, 5]

    def test_iter_records_memory_stays_per_segment(self, tmp_path):
        """Replaying a log far larger than one segment must not
        materialize it: peak allocation while draining
        ``iter_records`` is bounded by a segment, not the log."""
        import tracemalloc

        payload = _mutations(*[(i, i + 1) for i in range(200)])
        with WriteAheadLog(
            tmp_path, fsync="never", segment_bytes=16 << 10
        ) as wal:
            for i in range(400):
                wal.append("s", i, payload)
            log_bytes = sum(
                p.stat().st_size for p in tmp_path.glob("wal-*.log")
            )
            assert log_bytes > 10 * (16 << 10)  # genuinely multi-segment
            tracemalloc.start()
            count = 0
            for record in wal.iter_records():
                count += 1
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert count == 400
        # One decoded record + one segment buffer dominate the peak;
        # a materialized list of 400 records would be ~log_bytes.
        assert peak < log_bytes / 4
