"""Tests for retry policies, deadlines and the retry loop."""

import random

import pytest

from repro.resilience.retry import (
    Deadline,
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
    call_with_retry,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_exponential_schedule_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        delays = [policy.delay(a) for a in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]  # capped at max_delay

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay(0)

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=1.0, max_delay=1.0, jitter=0.5
        )
        first = [policy.delay(1, random.Random(7)) for _ in range(20)]
        assert first == [policy.delay(1, random.Random(7)) for _ in range(20)]
        for value in first:
            assert 0.1 <= value <= 0.15  # base * (1 + jitter * U[0,1))

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        assert policy.delay(1) == 0.1


class TestDeadline:
    def test_never(self):
        deadline = Deadline.never()
        assert deadline.remaining() == float("inf")
        assert not deadline.expired
        deadline.check()  # no raise

    def test_after_counts_down(self):
        deadline = Deadline.after(60.0)
        assert 0.0 < deadline.remaining() <= 60.0
        assert not deadline.expired

    def test_expired_deadline_raises_on_check(self):
        deadline = Deadline.after(-1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded, match="fetch"):
            deadline.check("fetch")

    def test_clamp_truncates_to_budget(self):
        assert Deadline.never().clamp(5.0) == 5.0
        assert Deadline.after(-1.0).clamp(5.0) == 0.0
        assert Deadline.after(60.0).clamp(5.0) == 5.0


class TestCallWithRetry:
    def _policy(self, attempts=3):
        return RetryPolicy(
            max_attempts=attempts, base_delay=0.01, max_delay=0.05,
            jitter=0.0,
        )

    def test_success_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        sleeps: list[float] = []
        result = call_with_retry(
            flaky, policy=self._policy(), retry_on=(OSError,),
            sleep=sleeps.append,
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert sleeps == [0.01, 0.02]  # backoff before attempts 2 and 3

    def test_retries_exhausted_carries_last_error(self):
        boom = OSError("persistent")

        def always_fails():
            raise boom

        with pytest.raises(RetriesExhausted) as excinfo:
            call_with_retry(
                always_fails, policy=self._policy(attempts=2),
                retry_on=(OSError,), label="unit", sleep=lambda s: None,
            )
        assert excinfo.value.attempts == 2
        assert excinfo.value.last is boom
        assert "unit" in str(excinfo.value)

    def test_non_matching_exception_propagates_immediately(self):
        calls = {"n": 0}

        def wrong_kind():
            calls["n"] += 1
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            call_with_retry(
                wrong_kind, policy=self._policy(), retry_on=(OSError,),
                sleep=lambda s: None,
            )
        assert calls["n"] == 1

    def test_on_retry_invoked_per_retry_with_attempt_and_error(self):
        seen: list[tuple[int, str]] = []

        def flaky():
            if len(seen) < 2:
                raise OSError(f"fail-{len(seen)}")
            return "done"

        call_with_retry(
            flaky, policy=self._policy(), retry_on=(OSError,),
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
            sleep=lambda s: None,
        )
        assert seen == [(1, "fail-0"), (2, "fail-1")]

    def test_deadline_checked_before_attempt(self):
        def never_called():
            raise AssertionError("should not run")

        with pytest.raises(DeadlineExceeded):
            call_with_retry(
                never_called, policy=self._policy(),
                retry_on=(OSError,), deadline=Deadline.after(-1.0),
            )

    def test_backoff_that_does_not_fit_budget_raises(self):
        def always_fails():
            raise OSError("transient")

        # Backoff of ~10s can never fit a 50ms budget: the loop must
        # raise DeadlineExceeded instead of sleeping through it.
        policy = RetryPolicy(
            max_attempts=5, base_delay=10.0, max_delay=10.0, jitter=0.0
        )
        with pytest.raises(DeadlineExceeded, match="does not fit"):
            call_with_retry(
                always_fails, policy=policy, retry_on=(OSError,),
                deadline=Deadline.after(0.05), sleep=lambda s: None,
            )

    def test_single_attempt_policy_never_sleeps(self):
        sleeps: list[float] = []
        with pytest.raises(RetriesExhausted):
            call_with_retry(
                lambda: (_ for _ in ()).throw(OSError("x")),
                policy=RetryPolicy(max_attempts=1),
                retry_on=(OSError,), sleep=sleeps.append,
            )
        assert sleeps == []

    def test_retries_counted_in_obs_registry(self):
        from repro.obs.metrics import get_registry

        counter = get_registry().counter(
            "repro_resilience_retries_total", component="retry-unit-test"
        )
        before = counter.value
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("once")
            return None

        call_with_retry(
            flaky, policy=self._policy(), retry_on=(OSError,),
            label="retry-unit-test", sleep=lambda s: None,
        )
        assert counter.value == before + 1
