"""Tests for the Greedy baseline (Section 2.3)."""

import pytest

from repro.algorithms.base import TimeLimitExceeded
from repro.algorithms.greedy import GreedySummarizer, two_hop_pairs
from repro.core.supernodes import SuperNodePartition
from repro.graph.generators import planted_partition
from repro.graph.graph import Graph


class TestTwoHopPairs:
    def test_path(self, path_graph):
        p = SuperNodePartition(path_graph)
        assert two_hop_pairs(p, 0) == {1, 2}
        assert two_hop_pairs(p, 2) == {0, 1, 3, 4}

    def test_excludes_self(self, triangle):
        p = SuperNodePartition(triangle)
        assert 0 not in two_hop_pairs(p, 0)

    def test_isolated_node(self):
        g = Graph(3, [(0, 1)])
        p = SuperNodePartition(g)
        assert two_hop_pairs(p, 2) == set()

    def test_respects_merged_structure(self, paper_like_graph):
        p = SuperNodePartition(paper_like_graph)
        w = p.merge(0, 1)
        reachable = two_hop_pairs(p, w)
        assert 2 in reachable and 3 in reachable


class TestGreedy:
    def test_collapses_clique_fully(self, clique_graph):
        result = GreedySummarizer().summarize(clique_graph)
        assert result.representation.num_supernodes == 1
        assert result.cost == 1

    def test_merges_all_twins(self, twin_graph):
        result = GreedySummarizer().summarize(twin_graph)
        rep = result.representation
        for i in range(4):
            assert rep.supernode_of(2 * i) == rep.supernode_of(2 * i + 1)

    def test_caveman_collapses_to_cliques(self):
        from repro.graph.generators import caveman

        g = caveman(4, 5, seed=0)
        result = GreedySummarizer().summarize(g)
        # Greedy should get close to the 4-super-node optimum.
        assert result.representation.num_supernodes <= 8
        assert result.relative_size < 0.5

    def test_every_merge_reduces_cost(self, community_graph):
        """Greedy only merges positive-saving pairs; with the exact
        saving, its final cost is strictly below the trivial cost
        whenever any positive pair existed."""
        result = GreedySummarizer().summarize(community_graph)
        assert result.cost < community_graph.m

    def test_compactness_beats_thresholded_methods(self):
        """The paper's premise: Greedy is the compactness gold standard
        (Figure 4).  Compare against SWeG on a structured graph."""
        from repro.algorithms.sweg import SWeGSummarizer

        g = planted_partition(120, 8, 0.7, 0.03, seed=9)
        greedy = GreedySummarizer().summarize(g)
        sweg = SWeGSummarizer(iterations=10, seed=9).summarize(g)
        assert greedy.cost <= sweg.cost

    def test_time_limit_enforced(self, community_graph):
        with pytest.raises(TimeLimitExceeded):
            GreedySummarizer(time_limit=0.0).summarize(community_graph)

    def test_empty_graph(self):
        result = GreedySummarizer().summarize(Graph(0, []))
        assert result.cost == 0

    def test_records_phases(self, twin_graph):
        result = GreedySummarizer().summarize(twin_graph)
        assert {"init", "merge", "output"} <= set(result.phase_seconds)
