"""Property-based tests (hypothesis) on the core invariants.

The central contracts exercised over arbitrary random graphs and merge
sequences:

* optimal-encoding costs obey Equation 2 bounds;
* the partition's weight tables conserve edge mass under any merges;
* every algorithm's output is lossless and never larger than trivial;
* the summary-side queries agree with the original graph exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    GreedySummarizer,
    MagsDMSummarizer,
    MagsSummarizer,
    SWeGSummarizer,
)
from repro.core.costs import pair_cost, potential_self_edges
from repro.core.encoding import encode
from repro.core.minhash import MinHashSignatures, exact_jaccard
from repro.core.supernodes import SuperNodePartition
from repro.core.verify import verify_lossless
from repro.graph.graph import Graph
from repro.graph.io import clean_edges
from repro.queries.neighbors import SummaryNeighborIndex
from repro.queries.pagerank import pagerank_input_graph, pagerank_summary

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def graphs(draw, max_nodes: int = 24, max_extra_edges: int = 60) -> Graph:
    """Arbitrary simple undirected graphs (possibly disconnected)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if not possible:
        return Graph(n, [])
    count = draw(st.integers(0, min(len(possible), max_extra_edges)))
    indices = draw(
        st.lists(
            st.integers(0, len(possible) - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    return Graph(n, [possible[i] for i in indices])


@st.composite
def graphs_with_merges(draw):
    """A graph plus a random valid merge sequence."""
    graph = draw(graphs())
    merge_count = draw(st.integers(0, max(0, graph.n - 1)))
    pair_seeds = draw(
        st.lists(
            st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
            min_size=merge_count,
            max_size=merge_count,
        )
    )
    return graph, pair_seeds


def _apply_merges(graph: Graph, pair_seeds) -> SuperNodePartition:
    partition = SuperNodePartition(graph)
    for a, b in pair_seeds:
        roots = sorted(partition.roots())
        if len(roots) < 2:
            break
        u = roots[a % len(roots)]
        v = roots[b % len(roots)]
        if u != v:
            partition.merge(u, v)
    return partition


# ----------------------------------------------------------------------
# Cost calculus
# ----------------------------------------------------------------------


@given(st.integers(1, 500), st.integers(0, 500))
def test_pair_cost_bounds(pi, edges):
    if edges > pi:
        edges = pi
    cost = pair_cost(pi, edges)
    assert 0 <= cost <= max(edges, 1)
    assert cost <= pi - edges + 1 or edges == 0


@given(st.integers(1, 100))
def test_potential_self_edges_is_binomial(size):
    assert potential_self_edges(size) == size * (size - 1) // 2


# ----------------------------------------------------------------------
# Partition invariants under arbitrary merges
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(graphs_with_merges())
def test_partition_invariants_under_merges(data):
    graph, pair_seeds = data
    partition = _apply_merges(graph, pair_seeds)
    partition.check_invariants()


@settings(max_examples=60, deadline=None)
@given(graphs_with_merges())
def test_encoding_is_lossless_for_any_partition(data):
    graph, pair_seeds = data
    partition = _apply_merges(graph, pair_seeds)
    rep = encode(partition)
    verify_lossless(graph, rep)


@settings(max_examples=60, deadline=None)
@given(graphs_with_merges())
def test_total_cost_matches_encoding_cost(data):
    """Equation 3 == Equation 1: the partition's incremental cost and
    the encoded representation's size must agree exactly."""
    graph, pair_seeds = data
    partition = _apply_merges(graph, pair_seeds)
    rep = encode(partition)
    assert partition.total_cost() == rep.cost


@settings(max_examples=40, deadline=None)
@given(graphs_with_merges())
def test_merged_cost_prediction_is_exact(data):
    graph, pair_seeds = data
    partition = _apply_merges(graph, pair_seeds)
    roots = sorted(partition.roots())
    if len(roots) < 2:
        return
    u, v = roots[0], roots[1]
    predicted = partition.merged_cost(u, v)
    w = partition.merge(u, v)
    assert partition.node_cost(w) == predicted


@settings(max_examples=40, deadline=None)
@given(graphs_with_merges())
def test_positive_saving_implies_cost_drop(data):
    graph, pair_seeds = data
    partition = _apply_merges(graph, pair_seeds)
    roots = sorted(partition.roots())
    if len(roots) < 2:
        return
    u, v = roots[-2], roots[-1]
    saving = partition.saving(u, v)
    before = partition.total_cost()
    partition.merge(u, v)
    after = partition.total_cost()
    if saving > 1e-12:
        assert after < before
    elif saving < -1e-12:
        assert after > before


# ----------------------------------------------------------------------
# MinHash
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(graphs(max_nodes=16))
def test_minhash_similarity_one_iff_same_signature(graph):
    sig = MinHashSignatures(graph, 16, seed=0)
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            if exact_jaccard(graph, u, v) == 1.0 and graph.neighbors(u):
                assert sig.similarity(u, v) == 1.0


@settings(max_examples=30, deadline=None)
@given(graphs(max_nodes=16), st.integers(0, 10_000))
def test_minhash_merge_equals_union(graph, pick):
    if graph.n < 2:
        return
    u = pick % graph.n
    v = (pick // graph.n) % graph.n
    if u == v:
        return
    sig = MinHashSignatures(graph, 8, seed=1)
    merged = np.minimum(sig.column(u).copy(), sig.column(v).copy())
    sig.merge(u, v)
    assert np.array_equal(sig.column(u), merged)


# ----------------------------------------------------------------------
# End-to-end algorithm properties
# ----------------------------------------------------------------------

_FAST_ALGOS = [
    lambda: GreedySummarizer(),
    lambda: MagsSummarizer(iterations=4, seed=1),
    lambda: MagsDMSummarizer(iterations=4, seed=1),
    lambda: SWeGSummarizer(iterations=4, seed=1),
]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(graphs(max_nodes=18), st.integers(0, 3))
def test_any_algorithm_is_lossless_on_any_graph(graph, which):
    result = _FAST_ALGOS[which]().summarize(graph)
    verify_lossless(graph, result.representation)
    assert result.cost <= graph.m


@settings(max_examples=20, deadline=None)
@given(graphs(max_nodes=16))
def test_summary_queries_agree_with_graph(graph):
    result = MagsDMSummarizer(iterations=4, seed=2).summarize(graph)
    index = SummaryNeighborIndex(result.representation)
    for q in range(graph.n):
        assert index.neighbors(q) == set(graph.neighbors(q))


@settings(max_examples=15, deadline=None)
@given(graphs(max_nodes=14))
def test_summary_pagerank_agrees_with_input(graph):
    result = MagsDMSummarizer(iterations=4, seed=3).summarize(graph)
    expected = pagerank_input_graph(graph, 0.85, 6)
    got = pagerank_summary(result.representation, 0.85, 6)
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)


# ----------------------------------------------------------------------
# I/O normalisation
# ----------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 40)), max_size=80
    )
)
def test_clean_edges_properties(raw):
    n, edges = clean_edges(raw)
    assert all(0 <= u < v < n for u, v in edges)
    assert len(set(edges)) == len(edges)
    # Cleaning is idempotent.
    assert clean_edges(edges) == (n, edges)


@settings(max_examples=25, deadline=None)
@given(graphs_with_merges())
def test_text_serialization_roundtrip(data):
    """The v1 text format round-trips any valid representation."""
    import tempfile
    from pathlib import Path

    from repro.core.serialization import (
        load_representation,
        save_representation,
    )

    graph, pair_seeds = data
    partition = _apply_merges(graph, pair_seeds)
    rep = encode(partition)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "summary.txt"
        save_representation(path, rep)
        loaded = load_representation(path)
    assert loaded.reconstruct_edges() == graph.edge_set()
    assert loaded.cost == rep.cost


@settings(max_examples=25, deadline=None)
@given(graphs_with_merges())
def test_binary_codec_roundtrip(data):
    """The binary summary blob round-trips any valid representation."""
    from repro.compression.codec import SummaryCodec

    graph, pair_seeds = data
    partition = _apply_merges(graph, pair_seeds)
    rep = encode(partition)
    decoded = SummaryCodec.decode(SummaryCodec.encode(rep))
    assert decoded.reconstruct_edges() == graph.edge_set()


@settings(max_examples=20, deadline=None)
@given(graphs_with_merges(), st.floats(0.0, 1.0))
def test_lossy_bound_holds_for_any_partition(data, epsilon):
    """Bounded-error pruning respects the per-node budget on any
    representation, not just algorithm outputs."""
    from repro.core.lossy import make_lossy, neighborhood_errors

    graph, pair_seeds = data
    partition = _apply_merges(graph, pair_seeds)
    rep = encode(partition)
    lossy = make_lossy(rep, epsilon)
    errors = neighborhood_errors(graph, lossy.representation)
    for v in range(graph.n):
        assert errors[v] <= epsilon * graph.degree(v) + 1e-9


@settings(max_examples=20, deadline=None)
@given(graphs_with_merges())
def test_components_and_degrees_from_any_partition(data):
    """Summary-side components and degree vectors agree with the graph
    for arbitrary partitions."""
    import numpy as np

    from repro.queries.analytics import degree_vector
    from repro.queries.traversal import num_connected_components

    graph, pair_seeds = data
    partition = _apply_merges(graph, pair_seeds)
    rep = encode(partition)
    np.testing.assert_array_equal(degree_vector(rep), graph.degrees())

    # Reference component count via BFS on the original graph.
    seen = set()
    components = 0
    for start in range(graph.n):
        if start in seen:
            continue
        components += 1
        stack = [start]
        seen.add(start)
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
    assert num_connected_components(rep) == components
