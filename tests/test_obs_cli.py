"""Tests for the `profile` and `trace` CLI subcommands."""

import pytest

from repro import obs
from repro.cli import build_parser, main
from repro.graph.generators import planted_partition
from repro.graph.io import save_graph


@pytest.fixture(autouse=True)
def restore_global_tracer():
    yield
    obs.stop_tracing()


@pytest.fixture
def edge_file(tmp_path):
    graph = planted_partition(80, 5, 0.7, 0.05, seed=2)
    path = tmp_path / "graph.txt"
    save_graph(path, graph)
    return path


class TestParser:
    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "-d", "CA"])
        assert args.algorithm == "mags-dm"
        assert args.iterations == 20
        assert args.trace_out is None
        assert args.prom_out is None

    def test_trace_flags(self):
        args = build_parser().parse_args(
            ["trace", "t.jsonl", "--validate", "--phases"]
        )
        assert args.validate and args.phases
        assert args.diff is None


class TestProfile:
    def test_profile_dataset_writes_valid_trace(self, tmp_path, capsys):
        trace_out = tmp_path / "trace.jsonl"
        prom_out = tmp_path / "metrics.prom"
        assert main([
            "profile", "-a", "mags-dm", "-d", "CA", "-T", "3",
            "--trace-out", str(trace_out), "--prom-out", str(prom_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "phase totals" in out
        assert "summarize:Mags-DM" in out
        records = obs.read_trace_jsonl(trace_out)
        assert obs.validate_trace(records) == []
        phases = set(obs.phase_totals(records))
        assert phases == {"signatures", "divide", "merge", "output"}
        prom = prom_out.read_text()
        assert "# TYPE repro_phase_seconds summary" in prom
        assert "repro_merges_total" in prom

    def test_profile_edge_list_input(self, edge_file, tmp_path, capsys):
        trace_out = tmp_path / "trace.jsonl"
        assert main([
            "profile", "-a", "mags", "-i", str(edge_file), "-T", "3",
            "--trace-out", str(trace_out),
        ]) == 0
        records = obs.read_trace_jsonl(trace_out)
        assert obs.validate_trace(records) == []
        assert "candidate_generation" in obs.phase_totals(records)

    def test_profile_requires_one_source(self, edge_file, capsys):
        assert main(["profile"]) == 2
        assert main(
            ["profile", "-d", "CA", "-i", str(edge_file)]
        ) == 2

    def test_profile_leaves_global_tracer_disabled(self, capsys):
        assert main(["profile", "-d", "CA", "-T", "2"]) == 0
        assert not obs.get_tracer().enabled


class TestTrace:
    @pytest.fixture
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main([
            "profile", "-d", "CA", "-T", "3", "--trace-out", str(path),
        ]) == 0
        capsys.readouterr()
        return path

    def test_default_prints_tree(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("- summarize:Mags-DM")
        assert "  - phase:merge" in out

    def test_validate_and_phases(self, trace_file, capsys):
        assert main(
            ["trace", str(trace_file), "--validate", "--phases"]
        ) == 0
        out = capsys.readouterr().out
        assert "schema OK" in out
        assert "merge" in out

    def test_validate_rejects_bad_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v": 1, "type": "span"}\n')
        assert main(["trace", str(bad), "--validate"]) == 1
        assert "missing field" in capsys.readouterr().err

    def test_unreadable_file(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json\n")
        assert main(["trace", str(garbage)]) == 1
        assert "unreadable" in capsys.readouterr().err

    def test_diff(self, trace_file, tmp_path, capsys):
        other = tmp_path / "other.jsonl"
        assert main([
            "profile", "-d", "CA", "-T", "2", "--trace-out", str(other),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_file), "--diff", str(other)]) == 0
        out = capsys.readouterr().out
        assert "delta_s" in out
        assert "merge" in out
