"""Tests for repro.obs.metrics and the Prometheus exporter."""

import pytest

from repro.obs.exporters import registry_to_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    nearest_rank,
)


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_up_down_set(self):
        gauge = Gauge()
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 2
        gauge.set(-7.5)
        assert gauge.value == -7.5


class TestHistogram:
    def test_percentiles_one_to_hundred(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert snap["p50"] == 50.0
        assert snap["p95"] == 95.0
        assert snap["p99"] == 99.0
        assert snap["count"] == 100
        assert snap["min"] == 1.0
        assert snap["max"] == 100.0
        assert snap["mean"] == pytest.approx(50.5)

    def test_reservoir_bounds_memory_not_count(self):
        histogram = Histogram(reservoir=10)
        for value in range(1000):
            histogram.observe(float(value))
        assert len(histogram.samples) == 10
        assert histogram.count == 1000
        # Window percentiles reflect only the retained tail.
        assert histogram.percentile(50.0) >= 990.0

    def test_empty_snapshot(self):
        assert Histogram().snapshot() == {"count": 0}
        assert Histogram().percentile(50.0) == 0.0

    def test_reservoir_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram(reservoir=0)

    def test_nearest_rank_single_value(self):
        assert nearest_rank([42.0], 99.0) == 42.0


class TestRegistry:
    def test_same_labels_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", op="x")
        b = registry.counter("requests", op="x")
        c = registry.counter("requests", op="y")
        assert a is b
        assert a is not c
        a.inc()
        assert b.value == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")
        with pytest.raises(TypeError):
            registry.histogram("thing")

    def test_family_and_len(self):
        registry = MetricsRegistry()
        registry.counter("requests", op="a")
        registry.counter("requests", op="b")
        registry.gauge("other")
        family = registry.family("requests")
        assert len(family) == 2
        assert {labels["op"] for labels, __ in family} == {"a", "b"}
        assert len(registry) == 3

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2)
        registry.histogram("lat", op="q").observe(0.5)
        snap = registry.snapshot()
        assert snap["hits"] == [
            {"labels": {}, "kind": "counter", "value": 2.0}
        ]
        (entry,) = snap["lat"]
        assert entry["labels"] == {"op": "q"}
        assert entry["kind"] == "histogram"
        assert entry["count"] == 1
        assert entry["p50"] == 0.5

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("x")
        registry.clear()
        assert len(registry) == 0

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", op="neighbors").inc(7)
        registry.gauge("active").set(3)
        text = registry_to_prometheus(registry)
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{op="neighbors"} 7' in text
        assert "# TYPE active gauge" in text
        assert "active 3" in text
        assert text.endswith("\n")

    def test_histogram_as_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", op="q")
        for value in range(1, 101):
            histogram.observe(value / 1000.0)
        text = registry_to_prometheus(registry)
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{op="q",quantile="0.5"} 0.05' in text
        assert 'latency_seconds_count{op="q"} 100' in text
        assert 'latency_seconds_sum{op="q"}' in text

    def test_type_line_emitted_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("c", op="a")
        registry.counter("c", op="b")
        text = registry_to_prometheus(registry)
        assert text.count("# TYPE c counter") == 1

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = registry_to_prometheus(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_empty_registry(self):
        assert registry_to_prometheus(MetricsRegistry()) == ""
