"""Tests for the varint/gap codecs and the compression pipeline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.compression.codec import (
    GraphCodec,
    SummaryCodec,
    compression_report,
)
from repro.compression.varint import (
    decode_varint,
    decode_varints,
    encode_varint,
    encode_varints,
    varint_size,
    zigzag_decode,
    zigzag_encode,
)
from repro.core.encoding import encode
from repro.core.supernodes import SuperNodePartition
from repro.graph.generators import templated_web
from repro.graph.graph import Graph


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**21, 2**63])
    def test_roundtrip(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data)
        assert decoded == value
        assert offset == len(data)

    def test_single_byte_boundary(self):
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)
        with pytest.raises(ValueError):
            varint_size(-1)

    def test_truncated_input(self):
        data = encode_varint(300)[:1]
        with pytest.raises(ValueError, match="truncated"):
            decode_varint(data)

    def test_stream_roundtrip(self):
        values = [0, 5, 1000, 7, 2**40]
        assert list(decode_varints(encode_varints(values))) == values

    @given(st.integers(0, 2**62))
    def test_size_matches_encoding(self, value):
        assert varint_size(value) == len(encode_varint(value))

    @given(st.integers(-(2**31), 2**31))
    def test_zigzag_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_zigzag_interleaves(self):
        assert [zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]


class TestGraphCodec:
    def test_roundtrip(self, paper_like_graph):
        blob = GraphCodec.encode(paper_like_graph)
        assert GraphCodec.decode(blob) == paper_like_graph

    def test_empty_graph(self):
        g = Graph(0, [])
        assert GraphCodec.decode(GraphCodec.encode(g)) == g

    def test_edgeless_graph(self):
        g = Graph(7, [])
        assert GraphCodec.decode(GraphCodec.encode(g)) == g

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="not a graph"):
            GraphCodec.decode(b"XXXX")

    def test_gap_coding_beats_raw_ints(self, community_graph):
        blob = GraphCodec.encode(community_graph)
        # 2 x 4-byte ints per edge would be 8 bytes/edge.
        assert len(blob) < 8 * community_graph.m

    @given(st.integers(0, 10_000))
    def test_random_graph_roundtrip(self, seed):
        from repro.graph.generators import erdos_renyi

        g = erdos_renyi(30, 0.2, seed=seed % 50)
        assert GraphCodec.decode(GraphCodec.encode(g)) == g


class TestSummaryCodec:
    def _roundtrip(self, graph, rep):
        decoded = SummaryCodec.decode(SummaryCodec.encode(rep))
        assert decoded.n == rep.n
        assert decoded.m == rep.m
        assert decoded.reconstruct_edges() == graph.edge_set()
        return decoded

    def test_singleton_encoding(self, paper_like_graph):
        rep = encode(SuperNodePartition(paper_like_graph))
        self._roundtrip(paper_like_graph, rep)

    def test_mags_output(self, community_graph):
        rep = MagsSummarizer(iterations=8, seed=1).summarize(
            community_graph
        ).representation
        self._roundtrip(community_graph, rep)

    def test_structure_preserved_modulo_renumbering(self, twin_graph):
        rep = MagsDMSummarizer(iterations=8, seed=1).summarize(
            twin_graph
        ).representation
        decoded = self._roundtrip(twin_graph, rep)
        original_members = sorted(
            tuple(sorted(m)) for m in rep.supernodes.values()
        )
        decoded_members = sorted(
            tuple(sorted(m)) for m in decoded.supernodes.values()
        )
        assert original_members == decoded_members

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="not a summary"):
            SummaryCodec.decode(b"XXXXXX")


class TestCompressionPipeline:
    def test_summary_compresses_further_on_web_graphs(self):
        """The Section 7 claim: summarize-then-compress beats
        compress-alone on summarizable structure."""
        graph = templated_web(600, 25, 70, 8, 0.03, seed=9)
        rep = MagsDMSummarizer(iterations=15, seed=1).summarize(
            graph
        ).representation
        report = compression_report(graph, rep)
        assert report.ratio < 0.7
        assert report.summary_bits_per_edge < report.graph_bits_per_edge

    def test_report_on_incompressible_graph(self):
        from repro.graph.generators import erdos_renyi

        graph = erdos_renyi(150, 0.08, seed=4)
        rep = MagsDMSummarizer(iterations=10, seed=1).summarize(
            graph
        ).representation
        report = compression_report(graph, rep)
        # Random graphs barely summarize; the pipeline must not blow
        # the size up by more than structural overhead.
        assert report.ratio < 1.6

    def test_report_fields(self, community_graph):
        rep = encode(SuperNodePartition(community_graph))
        report = compression_report(community_graph, rep)
        assert report.m == community_graph.m
        assert report.graph_bytes > 0
        assert report.summary_bytes > 0
        assert report.graph_bits_per_edge == pytest.approx(
            8 * report.graph_bytes / community_graph.m
        )
