"""Tests for the text figure renderers."""

import pytest

from repro.bench.charts import grouped_bar_chart, series_chart


@pytest.fixture
def figure_rows():
    return [
        {"dataset": "CA", "algorithm": "Mags", "relative_size": 0.7},
        {"dataset": "CA", "algorithm": "LDME", "relative_size": 0.9},
        {"dataset": "EN", "algorithm": "Mags", "relative_size": 0.6},
        {"dataset": "EN", "algorithm": "LDME", "relative_size": None},
    ]


class TestGroupedBarChart:
    def test_groups_and_bars_present(self, figure_rows):
        chart = grouped_bar_chart(
            figure_rows, "dataset", "algorithm", "relative_size",
            title="demo",
        )
        assert "demo" in chart
        assert "dataset=CA" in chart
        assert "dataset=EN" in chart
        assert chart.count("Mags") == 2

    def test_bar_length_proportional(self, figure_rows):
        chart = grouped_bar_chart(
            figure_rows, "dataset", "algorithm", "relative_size"
        )
        lines = [line for line in chart.splitlines() if "#" in line]
        lengths = {line.split()[0]: line.count("#") for line in lines[:2]}
        assert lengths["LDME"] > lengths["Mags"]

    def test_missing_values_marked_skipped(self, figure_rows):
        chart = grouped_bar_chart(
            figure_rows, "dataset", "algorithm", "relative_size"
        )
        assert "(skipped)" in chart

    def test_log_scale_compresses_ratios(self):
        rows = [
            {"dataset": "X", "algorithm": "fast", "t": 0.01},
            {"dataset": "X", "algorithm": "slow", "t": 100.0},
        ]
        linear = grouped_bar_chart(rows, "dataset", "algorithm", "t")
        log = grouped_bar_chart(
            rows, "dataset", "algorithm", "t", log_scale=True
        )

        def bar_of(chart, label):
            for line in chart.splitlines():
                if label in line:
                    return line.count("#")
            return 0

        assert bar_of(linear, "fast") <= 1
        assert bar_of(log, "fast") >= 1
        assert bar_of(log, "slow") == 40

    def test_all_missing(self):
        chart = grouped_bar_chart(
            [{"dataset": "X", "algorithm": "a", "v": None}],
            "dataset", "algorithm", "v", title="empty",
        )
        assert "(no data)" in chart

    def test_group_order_preserved(self):
        rows = [
            {"dataset": "Z", "algorithm": "a", "v": 1.0},
            {"dataset": "A", "algorithm": "a", "v": 2.0},
        ]
        chart = grouped_bar_chart(rows, "dataset", "algorithm", "v")
        assert chart.index("dataset=Z") < chart.index("dataset=A")

    def test_zero_values_render_empty_bar(self):
        rows = [
            {"dataset": "X", "algorithm": "zero", "v": 0.0},
            {"dataset": "X", "algorithm": "one", "v": 1.0},
        ]
        chart = grouped_bar_chart(rows, "dataset", "algorithm", "v")
        zero_line = next(l for l in chart.splitlines() if "zero" in l)
        assert "#" not in zero_line


class TestSeriesChart:
    def test_series_rendering(self):
        rows = [
            {"algorithm": "Mags", "T": 10, "rel": 0.65},
            {"algorithm": "Mags", "T": 20, "rel": 0.64},
            {"algorithm": "Mags-DM", "T": 10, "rel": 0.66},
        ]
        chart = series_chart(rows, "algorithm", "T", "rel", title="sweep")
        assert "sweep" in chart
        assert "Mags: 10:0.65  20:0.64" in chart
        assert "Mags-DM: 10:0.66" in chart

    def test_points_sorted_by_x(self):
        rows = [
            {"algorithm": "a", "T": 30, "rel": 0.3},
            {"algorithm": "a", "T": 10, "rel": 0.1},
        ]
        chart = series_chart(rows, "algorithm", "T", "rel")
        assert "10:0.1  30:0.3" in chart

    def test_none_values_skipped(self):
        rows = [
            {"algorithm": "a", "T": 10, "rel": None},
            {"algorithm": "a", "T": 20, "rel": 0.5},
        ]
        chart = series_chart(rows, "algorithm", "T", "rel")
        assert "10:" not in chart
        assert "20:0.5" in chart
