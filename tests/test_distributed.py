"""Tests for the distributed summarization simulation."""

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.verify import verify_lossless
from repro.distributed import (
    DistributedSummarizer,
    chunk_partition,
    cut_edges,
    hash_partition,
    neighborhood_partition,
    partition_quality,
)
from repro.graph.generators import planted_partition, templated_web
from repro.graph.graph import Graph


class TestPartitioners:
    def test_hash_partition_is_deterministic(self, community_graph):
        a = hash_partition(community_graph, 4, seed=1)
        b = hash_partition(community_graph, 4, seed=1)
        assert a == b
        assert hash_partition(community_graph, 4, seed=2) != a

    def test_hash_partition_is_roughly_balanced(self, community_graph):
        assignment = hash_partition(community_graph, 4, seed=0)
        loads = [assignment.count(p) for p in range(4)]
        ideal = community_graph.n / 4
        assert max(loads) < 1.6 * ideal

    def test_hash_partition_range(self, community_graph):
        assignment = hash_partition(community_graph, 3, seed=0)
        assert set(assignment) <= {0, 1, 2}
        assert len(assignment) == community_graph.n

    def test_chunk_partition_contiguous(self):
        g = Graph(10, [])
        assert chunk_partition(g, 2) == [0] * 5 + [1] * 5

    def test_chunk_partition_uneven(self):
        g = Graph(5, [])
        assignment = chunk_partition(g, 2)
        assert assignment == [0, 0, 0, 1, 1]

    def test_chunk_partition_empty_graph(self):
        assert chunk_partition(Graph(0, []), 3) == []

    def test_neighborhood_partition_balanced(self, community_graph):
        assignment = neighborhood_partition(community_graph, 4)
        loads = [assignment.count(p) for p in range(4)]
        capacity = 1.1 * community_graph.n / 4
        assert max(loads) <= capacity + 1

    def test_neighborhood_partition_reduces_cut_on_chunked_communities(self):
        # Communities laid out contiguously: affinity placement should
        # cut far fewer edges than hashing.
        blocks = []
        edges = []
        for c in range(4):
            base = c * 25
            for i in range(25):
                for j in range(i + 1, 25):
                    if (i + j) % 3 == 0:
                        edges.append((base + i, base + j))
        graph = Graph(100, edges)
        hash_cut = len(cut_edges(graph, hash_partition(graph, 4, seed=0)))
        affinity_cut = len(
            cut_edges(graph, neighborhood_partition(graph, 4))
        )
        assert affinity_cut < hash_cut

    def test_invalid_workers(self, triangle):
        with pytest.raises(ValueError):
            hash_partition(triangle, 0)
        with pytest.raises(ValueError):
            neighborhood_partition(triangle, 0)

    def test_more_workers_than_nodes_rejected(self, triangle):
        for partitioner in (
            hash_partition, chunk_partition, neighborhood_partition
        ):
            with pytest.raises(ValueError, match="exceeds the node count"):
                partitioner(triangle, triangle.n + 1)

    def test_workers_equal_nodes_allowed(self, triangle):
        assignment = chunk_partition(triangle, triangle.n)
        assert sorted(assignment) == list(range(triangle.n))

    def test_negative_slack_rejected(self, triangle):
        with pytest.raises(ValueError):
            neighborhood_partition(triangle, 2, balance_slack=-0.1)

    def test_cut_edges_wrong_length(self, triangle):
        with pytest.raises(ValueError):
            cut_edges(triangle, [0])

    def test_partition_quality_fields(self, community_graph):
        assignment = hash_partition(community_graph, 4, seed=0)
        quality = partition_quality(community_graph, assignment, 4)
        assert 0.0 <= quality["cut_fraction"] <= 1.0
        assert quality["imbalance"] >= 1.0


class TestDistributedSummarizer:
    @pytest.fixture(scope="class")
    def workload(self):
        return templated_web(400, 20, 50, 6, 0.05, seed=6)

    def _summarizer(self, workers, **kwargs):
        kwargs.setdefault(
            "summarizer_factory",
            lambda: MagsDMSummarizer(iterations=8, seed=1),
        )
        return DistributedSummarizer(workers=workers, seed=1, **kwargs)

    def test_single_worker_matches_central_quality(self, workload):
        central = MagsDMSummarizer(iterations=8, seed=1).summarize(workload)
        distributed = self._summarizer(1).summarize(workload)
        verify_lossless(workload, distributed.representation)
        assert distributed.cut_edge_count == 0
        assert distributed.relative_size <= central.relative_size * 1.1

    @pytest.mark.parametrize("workers", [2, 4])
    def test_lossless_for_any_worker_count(self, workload, workers):
        result = self._summarizer(workers).summarize(workload)
        verify_lossless(workload, result.representation)

    def test_quality_degrades_gracefully(self, workload):
        few = self._summarizer(2).summarize(workload)
        many = self._summarizer(8).summarize(workload)
        assert few.relative_size <= many.relative_size + 0.05
        assert many.relative_size < 1.0

    def test_refinement_improves_quality(self, workload):
        raw = self._summarizer(4, refinement_rounds=0).summarize(workload)
        refined = self._summarizer(4, refinement_rounds=10).summarize(
            workload
        )
        assert refined.refinement_merges > 0
        assert refined.relative_size <= raw.relative_size

    def test_communication_accounting(self, workload):
        result = self._summarizer(4).summarize(workload)
        assert len(result.upload_bytes) == 4
        assert all(b > 0 for b in result.upload_bytes)
        assert result.cut_payload_bytes > 0
        assert result.total_communication_bytes == (
            sum(result.upload_bytes) + result.cut_payload_bytes
        )

    def test_custom_partitioner(self, workload):
        result = DistributedSummarizer(
            workers=3,
            partitioner=lambda g, w: chunk_partition(g, w),
            summarizer_factory=lambda: MagsDMSummarizer(
                iterations=6, seed=1
            ),
        ).summarize(workload)
        verify_lossless(workload, result.representation)

    def test_bad_partitioner_rejected(self, workload):
        bad = DistributedSummarizer(
            workers=2, partitioner=lambda g, w: [0]
        )
        with pytest.raises(ValueError, match="wrong-length"):
            bad.summarize(workload)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DistributedSummarizer(workers=0)
        with pytest.raises(ValueError):
            DistributedSummarizer(workers=2, refinement_rounds=-1)

    def test_more_workers_than_nodes_rejected_up_front(self):
        # Even a custom partitioner that would tolerate it cannot
        # bypass the coordinator's own check.
        graph = Graph(3, [(0, 1), (1, 2)])
        summarizer = self._summarizer(
            8, partitioner=lambda g, w: [0] * g.n
        )
        with pytest.raises(ValueError, match="exceeds the node count"):
            summarizer.summarize(graph)

    def test_deterministic(self, workload):
        a = self._summarizer(4).summarize(workload)
        b = self._summarizer(4).summarize(workload)
        assert a.relative_size == b.relative_size
        assert a.upload_bytes == b.upload_bytes

    def test_community_graph_pipeline(self):
        graph = planted_partition(160, 8, 0.7, 0.02, seed=9)
        result = self._summarizer(4).summarize(graph)
        verify_lossless(graph, result.representation)
        assert result.relative_size < 1.0


class TestShardForNode:
    """The standalone keyed node->shard map the cluster router uses."""

    def test_matches_hash_partition(self, community_graph):
        from repro.distributed.partitioning import shard_for_node

        assignment = hash_partition(community_graph, 4, seed=3)
        assert assignment == [
            shard_for_node(u, 4, seed=3)
            for u in range(community_graph.n)
        ]

    def test_no_graph_needed(self):
        from repro.distributed.partitioning import shard_for_node

        # Placeable ids the process has never seen in any Graph.
        assert 0 <= shard_for_node(10**12, 7, seed=5) < 7

    def test_validation(self):
        from repro.distributed.partitioning import shard_for_node

        with pytest.raises(ValueError, match="shards"):
            shard_for_node(0, 0)
        with pytest.raises(ValueError, match="node"):
            shard_for_node(-1, 4)

    def test_independent_of_pythonhashseed(self):
        """The map must agree across processes with different (and
        randomized) PYTHONHASHSEED — it keys splitmix64, not hash()."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        script = (
            "from repro.distributed.partitioning import shard_for_node;"
            "print([shard_for_node(u, 5, seed=9) for u in range(64)])"
        )
        outputs = set()
        for hash_seed in ("0", "1", "random"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = os.pathsep.join(
                [src_dir, env.get("PYTHONPATH", "")]
            ).rstrip(os.pathsep)
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1

    def test_roughly_balanced_over_large_range(self):
        from repro.distributed.partitioning import shard_for_node

        counts = [0] * 8
        for u in range(4096):
            counts[shard_for_node(u, 8, seed=0)] += 1
        assert max(counts) < 1.35 * (4096 / 8)
