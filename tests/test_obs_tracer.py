"""Tests for repro.obs.tracer: spans, nesting, export round-trips."""

import threading

import pytest

from repro import obs
from repro.obs.tracer import NULL_SPAN


@pytest.fixture(autouse=True)
def restore_global_tracer():
    yield
    obs.stop_tracing()


class TestSpanNesting:
    def test_children_attach_to_enclosing_span(self):
        tracer = obs.Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["root"]["parent"] is None
        assert records["child"]["parent"] == root.span_id
        assert records["grandchild"]["parent"] == child.span_id
        assert grandchild.span_id != child.span_id

    def test_siblings_share_parent(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r["name"]: r for r in tracer.records()}
        assert by_name["a"]["parent"] == by_name["b"]["parent"]
        assert by_name["a"]["parent"] == by_name["root"]["span"]

    def test_explicit_parent_across_threads(self):
        tracer = obs.Tracer()
        with tracer.span("root") as root:
            def worker():
                span = tracer.start_span("thread-child", parent=root)
                tracer.end_span(span)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {r["name"]: r for r in tracer.records()}
        assert by_name["thread-child"]["parent"] == by_name["root"]["span"]

    def test_exception_sets_error_attr(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (record,) = tracer.records()
        assert record["attrs"]["error"] == "ValueError"

    def test_single_trace_id(self):
        tracer = obs.Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert len({r["trace"] for r in tracer.records()}) == 1


class TestSpanData:
    def test_attrs_counters_events(self):
        tracer = obs.Tracer()
        with tracer.span("work", algorithm="Mags") as span:
            span.set(n=100)
            span.inc("merges", 3)
            span.inc("merges", 2)
            span.event("iteration", t=1)
        (record,) = tracer.records()
        assert record["attrs"]["algorithm"] == "Mags"
        assert record["attrs"]["n"] == 100
        assert record["counters"]["merges"] == 5
        (event,) = record["events"]
        assert event["name"] == "iteration"
        assert event["attrs"] == {"t": 1}
        assert event["at_s"] >= 0.0
        assert record["wall_s"] >= 0.0
        assert record["cpu_s"] >= 0.0

    def test_current_span_helpers(self):
        tracer = obs.Tracer()
        with tracer.span("outer"):
            tracer.inc("ticks")
            tracer.event("hello", x=1)
        (record,) = tracer.records()
        assert record["counters"]["ticks"] == 1
        assert record["events"][0]["name"] == "hello"
        # Outside any span both helpers are no-ops.
        tracer.inc("ticks")
        tracer.event("dropped")

    def test_max_spans_cap(self):
        tracer = obs.Tracer(max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2

    def test_clear(self):
        tracer = obs.Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.records() == []


class TestGlobalTracer:
    def test_default_is_null(self):
        assert obs.get_tracer() is obs.NULL_TRACER
        assert not obs.get_tracer().enabled

    def test_use_tracer_restores(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            assert obs.get_tracer() is tracer
        assert obs.get_tracer() is obs.NULL_TRACER

    def test_start_stop_tracing(self):
        tracer = obs.start_tracing()
        assert obs.get_tracer() is tracer
        assert obs.stop_tracing() is tracer
        assert obs.get_tracer() is obs.NULL_TRACER

    def test_null_tracer_is_inert(self):
        null = obs.NULL_TRACER
        span = null.start_span("x", anything=1)
        assert span is NULL_SPAN
        assert span.set(a=1) is span
        span.inc("c")
        span.event("e")
        null.end_span(span)
        with null.span("y") as inner:
            assert inner is NULL_SPAN
        assert null.current() is None
        assert null.records() == []
        assert len(null) == 0


class TestProfiledDecorator:
    def test_disabled_calls_through(self):
        calls = []

        @obs.profiled
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6
        assert calls == [3]

    def test_enabled_opens_span(self):
        @obs.profiled
        def fn(x):
            return x + 1

        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            assert fn(1) == 2
        (record,) = tracer.records()
        assert record["name"].endswith("fn")

    def test_parameterised_name_and_attrs(self):
        @obs.profiled("encode", stage="output")
        def fn():
            return "ok"

        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            fn()
        (record,) = tracer.records()
        assert record["name"] == "encode"
        assert record["attrs"]["stage"] == "output"


class TestExport:
    def test_jsonl_round_trip_and_schema(self, tmp_path):
        tracer = obs.Tracer()
        with tracer.span("root", n=10) as span:
            span.inc("merges", 2)
            with tracer.span("phase:merge", phase="merge"):
                pass
        records = tracer.records()
        path = tmp_path / "trace.jsonl"
        obs.write_trace_jsonl(records, path)
        loaded = obs.read_trace_jsonl(path)
        assert loaded == records
        assert obs.validate_trace(loaded) == []

    def test_gzip_round_trip(self, tmp_path):
        tracer = obs.Tracer()
        with tracer.span("a"):
            pass
        path = tmp_path / "trace.jsonl.gz"
        obs.write_trace_jsonl(tracer.records(), path)
        assert obs.read_trace_jsonl(path) == tracer.records()

    def test_render_tree_indents_children(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        text = obs.render_trace_tree(tracer.records())
        lines = text.splitlines()
        assert lines[0].startswith("- root")
        assert lines[1].startswith("  - child")

    def test_validate_catches_broken_parent(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            pass
        (record,) = tracer.records()
        record = dict(record, parent="missing-id")
        errors = obs.validate_trace([record])
        assert any("parent" in e for e in errors)

    def test_validate_record_rejects_bad_types(self):
        errors = obs.validate_record({"v": "one"})
        assert errors
        assert obs.validate_record([]) == ["record: not a JSON object"]
