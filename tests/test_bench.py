"""Tests for the benchmark harness (runner, reporting, experiments)."""

import pytest

from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.bench import experiments
from repro.bench.reporting import format_table, geometric_mean, save_report
from repro.bench.runner import (
    bench_iterations,
    clear_caches,
    get_graph,
    quick_mode,
    run_grid,
    run_on_dataset,
)


@pytest.fixture(autouse=True)
def quick_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
    monkeypatch.setenv("REPRO_BENCH_T", "4")
    clear_caches()
    yield
    clear_caches()


class TestReporting:
    def test_format_table_aligns_columns(self):
        rows = [
            {"a": 1, "b": 0.5},
            {"a": 22, "b": 0.25},
        ]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "0.5000" in text
        assert "22" in text

    def test_format_table_handles_none(self):
        text = format_table([{"x": None}])
        assert "-" in text

    def test_format_empty_rows(self):
        assert "a" in format_table([], columns=["a"])

    def test_save_report(self, tmp_path):
        path = save_report("hello", "report", directory=tmp_path)
        assert path.read_text() == "hello\n"

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)


class TestRunner:
    def test_env_controls(self):
        assert bench_iterations() == 4
        assert quick_mode()

    def test_graph_cache_returns_same_object(self):
        assert get_graph("CA") is get_graph("CA")

    def test_run_on_dataset_caches_by_config(self):
        first = run_on_dataset("CA", lambda: MagsDMSummarizer(iterations=2))
        second = run_on_dataset("CA", lambda: MagsDMSummarizer(iterations=2))
        assert first is second
        third = run_on_dataset("CA", lambda: MagsDMSummarizer(iterations=3))
        assert third is not first

    def test_run_grid_rows(self):
        rows = run_grid(
            ["CA"],
            {"Mags-DM": lambda: MagsDMSummarizer(iterations=2)},
        )
        assert len(rows) == 1
        assert rows[0]["dataset"] == "CA"
        assert 0 < rows[0]["relative_size"] <= 1.0

    def test_run_grid_skip_cells(self):
        rows = run_grid(
            ["CA"],
            {"Mags-DM": lambda: MagsDMSummarizer(iterations=2)},
            skip={("Mags-DM", "CA")},
        )
        assert rows[0]["relative_size"] is None
        assert "skipped" in rows[0]["note"]


class TestExperiments:
    def test_table2(self):
        title, rows = experiments.table2_dataset_statistics()
        assert len(rows) == 18
        assert {"paper_n", "analog_n"} <= set(rows[0])

    def test_fig4_rows_cover_all_algorithms(self):
        __, rows = experiments.fig4_fig6_small_graphs()
        algorithms = {row["algorithm"] for row in rows}
        assert algorithms == {"Mags", "Mags-DM", "Greedy", "LDME", "Slugger"}

    def test_fig13_speedup_series(self):
        __, rows = experiments.fig13_parallel_speedup()
        by_algo: dict[str, list[float]] = {}
        for row in rows:
            if row["dataset"] == rows[0]["dataset"]:
                by_algo.setdefault(row["algorithm"], []).append(
                    row["speedup"]
                )
        for series in by_algo.values():
            assert series[0] == 1.0
            assert all(
                a <= b + 1e-9 for a, b in zip(series, series[1:])
            )

    def test_fig13_mags_dm_scales_better(self):
        """The paper's Figure 13 shape: Mags-DM out-scales Mags."""
        __, rows = experiments.fig13_parallel_speedup()
        at_40 = {
            (row["algorithm"], row["dataset"]): row["speedup"]
            for row in rows
            if row["p"] == 40
        }
        datasets = {d for (__, d) in at_40}
        better = sum(
            at_40[("Mags-DM", d)] >= at_40[("Mags", d)] for d in datasets
        )
        assert better >= len(datasets) / 2

    def test_neighbor_query_ratio_is_small(self):
        __, rows = experiments.neighbor_query_cost()
        assert all(row["ratio"] < 2.0 for row in rows)

    def test_table3_rows(self):
        __, rows = experiments.table3_pagerank()
        assert all(
            row["input_graph_s"] > 0 and row["summary_s"] > 0
            for row in rows
        )

    def test_medium_codes_subset_of_large(self):
        from repro.graph.datasets import LARGE_DATASETS

        assert set(experiments.medium_codes()) <= set(LARGE_DATASETS)


class TestRemainingExperiments:
    def test_fig5_fig7_rows_and_skips(self):
        __, rows = experiments.fig5_fig7_large_graphs()
        assert all(r["algorithm"] != "Greedy" for r in rows)
        datasets = {r["dataset"] for r in rows}
        assert datasets <= set(experiments.large_codes())

    def test_fig8_includes_naive_variant(self):
        __, rows = experiments.fig8_mags_ablation()
        algorithms = {r["algorithm"] for r in rows}
        assert "Mags (naive CG)" in algorithms
        naive = [r for r in rows if r["algorithm"] == "Mags (naive CG)"]
        assert all(r["cg_time_s"] is not None for r in naive)

    def test_fig9_includes_all_variants(self):
        __, rows = experiments.fig9_fig10_magsdm_ablation()
        assert {r["algorithm"] for r in rows} == {
            "Mags-DM", "Mags-DM (no DS)", "Mags-DM (no MS)", "SWeG"
        }

    def test_fig11_sweep_values(self):
        __, rows = experiments.fig11_fig12_iterations_sweep()
        assert {r["T"] for r in rows} == {10, 30, 50}

    def test_parameter_sweeps_have_expected_axes(self):
        __, rows_b = experiments.fig14_b_sweep()
        assert all("b" in r for r in rows_b)
        __, rows_h = experiments.fig15_h_sweep()
        assert all("h" in r for r in rows_h)
        __, rows_k = experiments.fig16_k_sweep()
        assert all("k" in r for r in rows_k)
        assert {r["algorithm"] for r in rows_k} == {"Mags"}

    def test_run_on_dataset_verify_flag(self):
        result = run_on_dataset(
            "CA",
            lambda: MagsDMSummarizer(iterations=2),
            verify=True,
        )
        assert result.relative_size > 0
